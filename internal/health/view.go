package health

import (
	"fmt"
	"sort"
	"time"

	"streammine/internal/recovery"
)

// View is the /debug/health JSON body.
type View struct {
	// SLO is the end-to-end latency budget attribution (always present;
	// TargetMs is omitted when no SLO was declared).
	SLO SLOView `json:"slo"`
	// Operators is the live per-operator view, in topology order.
	Operators []OperatorView `json:"operators"`
	// Backpressure lists one root-cause chain per stalled sink.
	Backpressure []Chain `json:"backpressure,omitempty"`
	// Stragglers lists workers deviating from their peers.
	Stragglers []Straggler `json:"stragglers,omitempty"`
	// Workers summarizes every reporting worker.
	Workers []WorkerView `json:"workers,omitempty"`
	// LastRecovery digests the most recent recovery incident (phase
	// durations + dominant phase), filled in by the coordinator so
	// `tracetool top` answers "what happened last" from a single poll.
	LastRecovery *recovery.Summary `json:"lastRecovery,omitempty"`
}

// SLOView decomposes the declared end-to-end p99 target across hops.
type SLOView struct {
	// TargetMs is the declared budget (topology sloP99Millis / -slo).
	TargetMs float64 `json:"targetMs,omitempty"`
	// ObservedP99Ms is the additive per-hop p99 along the critical path
	// (the paper's per-hop latency model: end-to-end latency is the sum
	// of per-hop admission→commit latencies).
	ObservedP99Ms float64 `json:"observedP99Ms"`
	// CriticalPath is the source→sink path maximizing the hop-p99 sum.
	CriticalPath []string `json:"criticalPath,omitempty"`
	// DominantHop is the operator consuming the largest budget share.
	DominantHop string `json:"dominantHop,omitempty"`
	// Violated reports ObservedP99Ms > TargetMs (false without a target).
	Violated bool `json:"violated,omitempty"`
}

// OperatorView is one operator's live health row.
type OperatorView struct {
	Node      string `json:"node"`
	Worker    string `json:"worker,omitempty"`
	Partition int    `json:"partition"`
	// RateEventsPerSec is the finalize rate (EWMA over STATUS folds).
	RateEventsPerSec float64 `json:"rateEventsPerSec"`
	Committed        uint64  `json:"committed"`
	P50Ms            float64 `json:"p50Ms,omitempty"`
	P99Ms            float64 `json:"p99Ms,omitempty"`
	// BudgetSharePct is this hop's share of the SLO budget (of the
	// observed end-to-end p99 when no target is declared).
	BudgetSharePct float64 `json:"budgetSharePct,omitempty"`
	// Dominant marks the budget-dominating hop.
	Dominant bool `json:"dominant,omitempty"`
	// OnCriticalPath marks hops on the max-latency source→sink path.
	OnCriticalPath bool `json:"onCriticalPath,omitempty"`
	// Mailbox/credit pressure from the latest STATUS fold.
	MailboxDepth int `json:"mailboxDepth,omitempty"`
	MailboxCap   int `json:"mailboxCap,omitempty"`
	CreditQueued int `json:"creditQueued,omitempty"`
	// Blocked: outputs parked awaiting downstream credits. Congested:
	// mailbox at ≥80% of its cap, or past the capless backlog floor.
	Blocked   bool `json:"blocked,omitempty"`
	Congested bool `json:"congested,omitempty"`
}

// Chain is one backpressure root-cause chain: the path from a stalled
// sink upstream to the operator that originates the stall.
type Chain struct {
	Sink string `json:"sink"`
	// Path runs sink → … → root.
	Path       []string `json:"path"`
	Root       string   `json:"root"`
	RootWorker string   `json:"rootWorker,omitempty"`
	Reason     string   `json:"reason"`
}

// Straggler is one worker deviating from its peers.
type Straggler struct {
	Worker               string  `json:"worker"`
	RateEventsPerSec     float64 `json:"rateEventsPerSec"`
	PeerRateEventsPerSec float64 `json:"peerRateEventsPerSec,omitempty"`
	BacklogEvents        int     `json:"backlogEvents,omitempty"`
	StatusAgeMs          float64 `json:"statusAgeMs"`
	Reason               string  `json:"reason"`
}

// WorkerView summarizes one reporting worker.
type WorkerView struct {
	Worker           string  `json:"worker"`
	RateEventsPerSec float64 `json:"rateEventsPerSec"`
	StatusAgeMs      float64 `json:"statusAgeMs"`
	Partitions       int     `json:"partitions"`
	BacklogEvents    int     `json:"backlogEvents"`
	Straggler        bool    `json:"straggler,omitempty"`
}

// congestFloor is the capless-mailbox backlog that counts as congestion:
// without a configured mailbox cap there is no 80%-full signal, so a
// node whose queue holds this many undrained events is treated as the
// choke point.
const congestFloor = 64

// strugglerStreak is how many consecutive snapshots a worker must look
// deviant before it is flagged — one-poll blips don't page anyone.
const stragglerStreak = 2

// Snapshot renders the live view. It is called from /debug/health and
// metric scrapes — off the hot path — and may update straggler hysteresis
// counters.
func (m *Model) Snapshot() *View {
	return m.snapshotAt(time.Now())
}

func (m *Model) snapshotAt(now time.Time) *View {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	v := &View{}
	m.sloLocked(v)
	m.operatorsLocked(v)
	m.backpressureLocked(v, now)
	m.workersLocked(v, now)
	return v
}

// blocked reports outputs parked awaiting downstream credits.
func (op *opState) blocked() bool {
	return op.hasPressure && op.pressure.CreditQueued > 0
}

// congested reports a mailbox at ≥80% of its cap, or past the capless
// backlog floor.
func (op *opState) congested() bool {
	if !op.hasPressure {
		return false
	}
	p := op.pressure
	if p.DataCap > 0 {
		return 5*p.DataDepth >= 4*p.DataCap
	}
	return p.DataDepth >= congestFloor
}

// sloLocked computes the budget attribution: the critical (max hop-p99
// sum) source→sink path, the observed end-to-end p99 as its sum, and the
// dominant hop.
func (m *Model) sloLocked(v *View) {
	// Longest path through the DAG by memoized DFS over upstream edges.
	type best struct {
		sum  time.Duration
		from string // chosen upstream ("" at a source)
	}
	memo := make(map[string]best, len(m.ops))
	var visit func(name string, onStack map[string]bool) best
	visit = func(name string, onStack map[string]bool) best {
		if b, ok := memo[name]; ok {
			return b
		}
		if onStack[name] {
			return best{} // defensive: topologies are validated DAGs
		}
		onStack[name] = true
		defer delete(onStack, name)
		op := m.ops[name]
		if op == nil {
			return best{}
		}
		var bestUp string
		bestUpSum := time.Duration(-1)
		for _, up := range op.inputs {
			if ub := visit(up, onStack); bestUpSum < 0 || ub.sum > bestUpSum {
				bestUp, bestUpSum = up, ub.sum
			}
		}
		b := best{sum: op.p99}
		if bestUpSum >= 0 {
			b.sum += bestUpSum
			b.from = bestUp
		}
		memo[name] = b
		return b
	}
	onStack := make(map[string]bool)
	var critSink string
	var critSum time.Duration
	for _, s := range m.sinks {
		if b := visit(s, onStack); critSink == "" || b.sum > critSum {
			critSink, critSum = s, b.sum
		}
	}
	// Reconstruct the path sink→source, then reverse to source→sink.
	var path []string
	for cur := critSink; cur != ""; cur = memo[cur].from {
		path = append(path, cur)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	v.SLO = SLOView{
		TargetMs:      float64(m.opts.SLO) / float64(time.Millisecond),
		ObservedP99Ms: float64(critSum) / float64(time.Millisecond),
		CriticalPath:  path,
		Violated:      m.opts.SLO > 0 && critSum > m.opts.SLO,
	}
	var domHop string
	var domP99 time.Duration
	for _, name := range path {
		if op := m.ops[name]; op != nil && op.p99 > domP99 {
			domHop, domP99 = name, op.p99
		}
	}
	v.SLO.DominantHop = domHop
}

// operatorsLocked fills the per-operator rows, attributing each hop's
// budget share against the target (or the observed sum without one).
func (m *Model) operatorsLocked(v *View) {
	denom := m.opts.SLO
	if denom <= 0 {
		denom = time.Duration(v.SLO.ObservedP99Ms * float64(time.Millisecond))
	}
	onPath := make(map[string]bool, len(v.SLO.CriticalPath))
	for _, n := range v.SLO.CriticalPath {
		onPath[n] = true
	}
	for _, name := range m.order {
		op := m.ops[name]
		row := OperatorView{
			Node:             name,
			Worker:           op.worker,
			Partition:        op.partition,
			RateEventsPerSec: round1(op.rate),
			Committed:        op.committed,
			P50Ms:            float64(op.p50) / float64(time.Millisecond),
			P99Ms:            float64(op.p99) / float64(time.Millisecond),
			OnCriticalPath:   onPath[name],
			Dominant:         name == v.SLO.DominantHop && op.p99 > 0,
			Blocked:          op.blocked(),
			Congested:        op.congested(),
		}
		if denom > 0 {
			row.BudgetSharePct = round1(100 * float64(op.p99) / float64(denom))
		}
		if op.hasPressure {
			row.MailboxDepth = op.pressure.DataDepth
			row.MailboxCap = op.pressure.DataCap
			row.CreditQueued = op.pressure.CreditQueued
		}
		v.Operators = append(v.Operators, row)
	}
}

// backpressureLocked walks each sink's upstream cone for the most
// backlogged problem node and names it as the chain's root cause.
func (m *Model) backpressureLocked(v *View, now time.Time) {
	for _, sink := range m.sinks {
		// DFS for the problem node with the largest backlog score; keep
		// the path that reaches it.
		var bestRoot *opState
		var bestScore int
		var bestPath []string
		var walk func(name string, path []string, seen map[string]bool)
		walk = func(name string, path []string, seen map[string]bool) {
			if seen[name] {
				return
			}
			seen[name] = true
			op := m.ops[name]
			if op == nil {
				return
			}
			path = append(path, name)
			if op.blocked() || op.congested() {
				score := 1 + op.pressure.DataDepth + op.pressure.CreditQueued
				// Prefer the furthest-upstream problem at equal score:
				// DFS reaches it last along the path, so >= keeps it.
				if score >= bestScore {
					bestScore = score
					bestRoot = op
					bestPath = append([]string(nil), path...)
				}
			}
			for _, up := range op.inputs {
				walk(up, path, seen)
			}
		}
		walk(sink, nil, make(map[string]bool))
		if bestRoot == nil {
			continue
		}
		c := Chain{
			Sink:       sink,
			Path:       bestPath,
			Root:       bestRoot.name,
			RootWorker: bestRoot.worker,
			Reason:     chainReason(bestRoot),
		}
		if !bestRoot.lastAt.IsZero() {
			if age := now.Sub(bestRoot.lastAt); age > 4*m.opts.HeartbeatInterval {
				c.Reason += fmt.Sprintf("; last report %s ago", age.Round(time.Millisecond))
			}
		}
		v.Backpressure = append(v.Backpressure, c)
	}
}

// chainReason explains why the root node is the stall's origin.
func chainReason(op *opState) string {
	p := op.pressure
	switch {
	case op.congested() && !op.blocked():
		if p.DataCap > 0 {
			return fmt.Sprintf("mailbox %d/%d full and outputs not credit-blocked — slowest consumer on the chain", p.DataDepth, p.DataCap)
		}
		return fmt.Sprintf("mailbox backlog %d events and outputs not credit-blocked — processing or egress bottleneck", p.DataDepth)
	case op.congested():
		return fmt.Sprintf("backlogged (%d queued) while awaiting downstream credits (%d outputs parked)", p.DataDepth, p.CreditQueued)
	default:
		return fmt.Sprintf("outputs parked awaiting downstream credits (%d queued)", p.CreditQueued)
	}
}

// workersLocked fills the worker summaries and runs peer-deviation
// straggler detection with a two-snapshot hysteresis.
func (m *Model) workersLocked(v *View, now time.Time) {
	names := make([]string, 0, len(m.work))
	for n := range m.work {
		names = append(names, n)
	}
	sort.Strings(names)

	backlog := make(map[string]int, len(m.work))
	partsOf := make(map[string]map[int]bool, len(m.work))
	for _, op := range m.ops {
		if op.worker == "" {
			continue
		}
		if op.hasPressure {
			backlog[op.worker] += op.pressure.DataDepth
		}
		if partsOf[op.worker] == nil {
			partsOf[op.worker] = make(map[int]bool)
		}
		if op.partition >= 0 {
			partsOf[op.worker][op.partition] = true
		}
	}

	for _, name := range names {
		w := m.work[name]
		age := time.Duration(0)
		if !w.lastAt.IsZero() {
			age = now.Sub(w.lastAt)
		}
		peerRateMax := 0.0
		peerBacklogMax := 0
		for _, peer := range names {
			if peer == name {
				continue
			}
			if r := m.work[peer].rate; r > peerRateMax {
				peerRateMax = r
			}
			if b := backlog[peer]; b > peerBacklogMax {
				peerBacklogMax = b
			}
		}
		var reason string
		if len(names) >= 2 {
			staleAfter := 4 * m.opts.HeartbeatInterval
			if staleAfter < 400*time.Millisecond {
				staleAfter = 400 * time.Millisecond
			}
			peerFloor := peerBacklogMax
			if peerFloor < congestFloor/4 {
				peerFloor = congestFloor / 4
			}
			switch {
			case age > staleAfter:
				reason = fmt.Sprintf("status reports stale for %s (peers current)", age.Round(time.Millisecond))
			case backlog[name] >= congestFloor && backlog[name] >= 4*peerFloor:
				reason = fmt.Sprintf("mailbox backlog %d events vs %d on the busiest peer", backlog[name], peerBacklogMax)
			// The rate rule only applies to workers that have ever
			// committed: a worker hosting only sources finalizes
			// nothing by design, and a wedged-from-birth worker is
			// caught by the backlog and staleness rules instead.
			case w.lastSum > 0 && peerRateMax >= 50 && w.rate < 0.5*peerRateMax:
				reason = fmt.Sprintf("finalize rate %.0f/s under half the fastest peer's %.0f/s", w.rate, peerRateMax)
			}
		}
		if reason != "" {
			w.devStreak++
		} else {
			w.devStreak = 0
		}
		flagged := w.devStreak >= stragglerStreak
		v.Workers = append(v.Workers, WorkerView{
			Worker:           name,
			RateEventsPerSec: round1(w.rate),
			StatusAgeMs:      float64(age) / float64(time.Millisecond),
			Partitions:       len(partsOf[name]),
			BacklogEvents:    backlog[name],
			Straggler:        flagged,
		})
		if flagged {
			v.Stragglers = append(v.Stragglers, Straggler{
				Worker:               name,
				RateEventsPerSec:     round1(w.rate),
				PeerRateEventsPerSec: round1(peerRateMax),
				BacklogEvents:        backlog[name],
				StatusAgeMs:          float64(age) / float64(time.Millisecond),
				Reason:               reason,
			})
		}
	}
}

// round1 keeps JSON rates readable (one decimal).
func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}
