package event

import "sync"

// bufPool recycles encode scratch buffers across frame writes, so the
// transport hot path does not allocate a fresh buffer per frame. Buffers
// are pooled by pointer (a plain []byte in a sync.Pool re-allocates the
// slice header on every Put).
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuffer returns a zero-length scratch buffer with pooled capacity.
// Callers append into it and must hand it back with PutBuffer once the
// encoded bytes have been consumed (written to the wire).
func GetBuffer() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuffer recycles a buffer obtained from GetBuffer. Oversized buffers
// (past 1 MiB) are dropped so a single jumbo payload does not pin its
// capacity in the pool forever.
func PutBuffer(b []byte) {
	if cap(b) > 1<<20 {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
