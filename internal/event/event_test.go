package event

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	tests := []struct {
		id   ID
		want string
	}{
		{ID{Source: 0, Seq: 0}, "0:0"},
		{ID{Source: 7, Seq: 42}, "7:42"},
		{ID{Source: 4294967295, Seq: 18446744073709551615}, "4294967295:18446744073709551615"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("ID%v.String() = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestIDLess(t *testing.T) {
	tests := []struct {
		name string
		a, b ID
		want bool
	}{
		{"same", ID{1, 1}, ID{1, 1}, false},
		{"seq less", ID{1, 1}, ID{1, 2}, true},
		{"seq greater", ID{1, 3}, ID{1, 2}, false},
		{"source dominates seq", ID{1, 99}, ID{2, 0}, true},
		{"source greater", ID{3, 0}, ID{2, 99}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := New(ID{1, 2}, 3, []byte("hello"))
	c := e.Clone()
	c.Payload[0] = 'X'
	if e.Payload[0] != 'h' {
		t.Fatal("Clone shares payload with original")
	}
	if !e.SameContent(New(ID{1, 2}, 3, []byte("hello"))) {
		t.Fatal("original mutated by clone edit")
	}
}

func TestCloneNilPayload(t *testing.T) {
	e := New(ID{1, 2}, 3, nil)
	c := e.Clone()
	if c.Payload != nil {
		t.Fatalf("Clone of nil payload = %v, want nil", c.Payload)
	}
}

func TestAsFinalAndNextVersion(t *testing.T) {
	e := NewSpeculative(ID{1, 1}, 10, []byte("a"))
	if !e.Speculative || e.Version != 0 {
		t.Fatalf("NewSpeculative: got %+v", e)
	}
	f := e.AsFinal()
	if f.Speculative {
		t.Fatal("AsFinal left speculative flag set")
	}
	if !e.Speculative {
		t.Fatal("AsFinal mutated receiver")
	}
	v1 := e.NextVersion([]byte("b"))
	if v1.Version != 1 || !v1.Speculative || string(v1.Payload) != "b" {
		t.Fatalf("NextVersion: got %+v", v1)
	}
	if v1.ID != e.ID || v1.Timestamp != e.Timestamp {
		t.Fatal("NextVersion changed identity")
	}
}

func TestSameContentIgnoresSpeculationMetadata(t *testing.T) {
	a := Event{ID: ID{1, 1}, Timestamp: 5, Key: 9, Payload: []byte("x"), Speculative: true, Version: 3}
	b := Event{ID: ID{1, 1}, Timestamp: 5, Key: 9, Payload: []byte("x")}
	if !a.SameContent(b) {
		t.Fatal("SameContent should ignore speculative flag and version")
	}
	b.Key = 10
	if a.SameContent(b) {
		t.Fatal("SameContent should compare keys")
	}
}

func TestBefore(t *testing.T) {
	tests := []struct {
		name string
		a, b Event
		want bool
	}{
		{"timestamp order", Event{ID: ID{2, 2}, Timestamp: 1}, Event{ID: ID{1, 1}, Timestamp: 2}, true},
		{"timestamp reverse", Event{ID: ID{1, 1}, Timestamp: 3}, Event{ID: ID{2, 2}, Timestamp: 2}, false},
		{"tie broken by id", Event{ID: ID{1, 1}, Timestamp: 5}, Event{ID: ID{1, 2}, Timestamp: 5}, true},
		{"equal", Event{ID: ID{1, 1}, Timestamp: 5}, Event{ID: ID{1, 1}, Timestamp: 5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Before(tt.b); got != tt.want {
				t.Errorf("Before = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{},
		New(ID{1, 2}, 3, []byte("payload")),
		NewSpeculative(ID{9, 100}, -5, nil),
		{ID: ID{4294967295, 1 << 60}, Timestamp: 1 << 40, Version: 77, Speculative: true, Key: 1 << 50, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{ID: ID{5, 6}, Timestamp: 7, Trace: TraceOf(ID{5, 6}), Payload: []byte("traced")},
		{ID: ID{5, 7}, Trace: ^uint64(0), Speculative: true},
	}
	for i, e := range events {
		buf := e.Encode(nil)
		if len(buf) != e.EncodedSize() {
			t.Errorf("event %d: EncodedSize=%d, Encode produced %d", i, e.EncodedSize(), len(buf))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("event %d: Decode: %v", i, err)
		}
		if n != len(buf) {
			t.Errorf("event %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !eventsEqual(got, e) {
			t.Errorf("event %d: round trip:\n got %+v\nwant %+v", i, got, e)
		}
	}
}

func eventsEqual(a, b Event) bool {
	return a.ID == b.ID && a.Timestamp == b.Timestamp && a.Version == b.Version &&
		a.Speculative == b.Speculative && a.Key == b.Key && a.Trace == b.Trace &&
		bytes.Equal(a.Payload, b.Payload)
}

// TestEncodeUntracedIsLegacyCompatible pins the codec versioning: an
// untraced event encodes to exactly the pre-trace wire format (no flag
// bit, no trailer), so old decoders read frames from new encoders as long
// as tracing is off, and the traced form is strictly additive.
func TestEncodeUntracedIsLegacyCompatible(t *testing.T) {
	e := New(ID{1, 2}, 3, []byte("payload"))
	buf := e.Encode(nil)
	if len(buf) != headerSize+len(e.Payload) {
		t.Fatalf("untraced frame is %d bytes, want header %d + payload %d", len(buf), headerSize, len(e.Payload))
	}
	if buf[24]&flagTraced != 0 {
		t.Fatal("untraced frame has the traced flag set")
	}
	traced := e
	traced.Trace = TraceOf(e.ID)
	tbuf := traced.Encode(nil)
	if len(tbuf) != len(buf)+traceSize {
		t.Fatalf("traced frame is %d bytes, want %d + %d trailer", len(tbuf), len(buf), traceSize)
	}
	if tbuf[24]&flagTraced == 0 {
		t.Fatal("traced frame is missing the traced flag")
	}
	// The traced frame's prefix is the legacy frame except the flag byte:
	// a decoder that knows the flag reads the trailer, one event at a time.
	got, n, err := Decode(tbuf)
	if err != nil || n != len(tbuf) {
		t.Fatalf("Decode traced frame: n=%d err=%v", n, err)
	}
	if got.Trace != traced.Trace {
		t.Fatalf("trace = %x, want %x", got.Trace, traced.Trace)
	}
}

// TestTraceOf pins the deterministic trace-id derivation: stable across
// calls (failover re-emission joins the original lineage), never zero
// (zero means untraced), and well-mixed across adjacent sequences.
func TestTraceOf(t *testing.T) {
	id := ID{Source: 3, Seq: 41}
	if TraceOf(id) != TraceOf(id) {
		t.Fatal("TraceOf is not deterministic")
	}
	seen := make(map[uint64]ID)
	for src := SourceID(0); src < 8; src++ {
		for seq := Seq(0); seq < 1000; seq++ {
			tr := TraceOf(ID{Source: src, Seq: seq})
			if tr == 0 {
				t.Fatalf("TraceOf(%d:%d) = 0; zero is reserved for untraced", src, seq)
			}
			if prev, dup := seen[tr]; dup {
				t.Fatalf("trace collision: %v and %v", prev, ID{Source: src, Seq: seq})
			}
			seen[tr] = ID{Source: src, Seq: seq}
		}
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	e := New(ID{1, 2}, 3, []byte("hello"))
	buf := e.Encode(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded, want error", cut, len(buf))
		}
	}
}

func TestDecodeRejectsHugePayload(t *testing.T) {
	e := New(ID{1, 2}, 3, []byte("hello"))
	buf := e.Encode(nil)
	// Corrupt the length prefix to claim an enormous payload.
	buf[33], buf[34], buf[35], buf[36] = 0xFF, 0xFF, 0xFF, 0x7F
	_, _, err := Decode(buf)
	if err == nil {
		t.Fatal("Decode accepted oversized payload length")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	batch := []Event{
		New(ID{1, 1}, 1, []byte("a")),
		NewSpeculative(ID{2, 2}, 2, []byte("bb")),
		New(ID{3, 3}, 3, nil),
	}
	buf := EncodeBatch(nil, batch)
	got, n, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if len(got) != len(batch) {
		t.Fatalf("got %d events, want %d", len(got), len(batch))
	}
	for i := range batch {
		if !eventsEqual(got[i], batch[i]) {
			t.Errorf("event %d mismatch: got %+v want %+v", i, got[i], batch[i])
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	buf := EncodeBatch(nil, nil)
	got, _, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d events, want 0", len(got))
	}
}

func TestBatchTruncated(t *testing.T) {
	buf := EncodeBatch(nil, []Event{New(ID{1, 1}, 1, []byte("abc"))})
	if _, _, err := DecodeBatch(buf[:len(buf)-1]); err == nil {
		t.Fatal("DecodeBatch accepted truncated input")
	}
	if _, _, err := DecodeBatch(nil); err == nil {
		t.Fatal("DecodeBatch accepted empty input")
	}
}

// TestQuickRoundTrip property-tests the codec over random events.
func TestQuickRoundTrip(t *testing.T) {
	f := func(src uint32, seq uint64, ts int64, ver uint32, spec bool, key uint64, payload []byte) bool {
		e := Event{
			ID:          ID{Source: SourceID(src), Seq: Seq(seq)},
			Timestamp:   ts,
			Version:     Version(ver),
			Speculative: spec,
			Key:         key,
			Payload:     payload,
		}
		buf := e.Encode(nil)
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		// Decode yields nil for empty payloads; normalize before comparing.
		if len(payload) == 0 {
			e.Payload = nil
		}
		return eventsEqual(got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBeforeIsStrictOrder property-tests that Before is a strict total
// order (irreflexive, asymmetric, and connected on distinct events).
func TestQuickBeforeIsStrictOrder(t *testing.T) {
	f := func(s1, s2 uint32, q1, q2 uint64, t1, t2 int64) bool {
		a := Event{ID: ID{SourceID(s1), Seq(q1)}, Timestamp: t1}
		b := Event{ID: ID{SourceID(s2), Seq(q2)}, Timestamp: t2}
		if a.Before(a) || b.Before(b) {
			return false // must be irreflexive
		}
		same := a.ID == b.ID && a.Timestamp == b.Timestamp
		if same {
			return !a.Before(b) && !b.Before(a)
		}
		return a.Before(b) != b.Before(a) // exactly one direction
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	e := New(ID{1, 2}, 3, bytes.Repeat([]byte{0x55}, 128))
	buf := make([]byte, 0, e.EncodedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = e.Encode(buf[:0])
	}
}

func BenchmarkDecode(b *testing.B) {
	e := New(ID{1, 2}, 3, bytes.Repeat([]byte{0x55}, 128))
	buf := e.Encode(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
