package event

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary layout (little endian):
//
//	source    uint32
//	seq       uint64
//	timestamp int64
//	version   uint32
//	flags     uint8   (bit 0: speculative, bit 1: traced)
//	key       uint64
//	plen      uint32
//	payload   plen bytes
//	trace     uint64  (present only when bit 1 of flags is set)
//
// The trace trailer is versioned by its flag bit, like the CREDIT message
// kind: old decoders never see the bit set by old encoders, and new
// decoders only read the trailer when the bit is present, so mixed-version
// peers interoperate (an old decoder receiving a traced frame would fail
// ErrShortBuffer rather than misparse, since the flag gate keeps the
// trailer out of the payload length).
const headerSize = 4 + 8 + 8 + 4 + 1 + 8 + 4

const (
	flagSpeculative = 1 << 0
	flagTraced      = 1 << 1
)

// traceSize is the length of the optional trace trailer.
const traceSize = 8

// MaxPayload bounds the payload size accepted by the codec. It protects the
// transport against corrupt length prefixes.
const MaxPayload = 64 << 20

var (
	// ErrShortBuffer is returned when decoding input that is too small to
	// hold the encoded event it claims to contain.
	ErrShortBuffer = errors.New("event: short buffer")
	// ErrPayloadTooLarge is returned when a length prefix exceeds MaxPayload.
	ErrPayloadTooLarge = errors.New("event: payload too large")
)

// EncodedSize returns the exact number of bytes Encode will produce for e.
func (e Event) EncodedSize() int {
	n := headerSize + len(e.Payload)
	if e.Trace != 0 {
		n += traceSize
	}
	return n
}

// Encode appends the binary form of e to dst and returns the extended
// slice. Encode never fails.
func (e Event) Encode(dst []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(e.ID.Source))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(e.ID.Seq))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(e.Timestamp))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(e.Version))
	var flags uint8
	if e.Speculative {
		flags |= flagSpeculative
	}
	if e.Trace != 0 {
		flags |= flagTraced
	}
	hdr[24] = flags
	binary.LittleEndian.PutUint64(hdr[25:], e.Key)
	binary.LittleEndian.PutUint32(hdr[33:], uint32(len(e.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, e.Payload...)
	if e.Trace != 0 {
		var tr [traceSize]byte
		binary.LittleEndian.PutUint64(tr[:], e.Trace)
		dst = append(dst, tr[:]...)
	}
	return dst
}

// Decode parses one event from the front of src and returns it along with
// the number of bytes consumed. The returned event's payload aliases src;
// callers that retain the event beyond the life of src must Clone it.
func Decode(src []byte) (Event, int, error) {
	if len(src) < headerSize {
		return Event{}, 0, ErrShortBuffer
	}
	plen := binary.LittleEndian.Uint32(src[33:])
	if plen > MaxPayload {
		return Event{}, 0, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, plen)
	}
	total := headerSize + int(plen)
	traced := src[24]&flagTraced != 0
	if traced {
		total += traceSize
	}
	if len(src) < total {
		return Event{}, 0, ErrShortBuffer
	}
	e := Event{
		ID: ID{
			Source: SourceID(binary.LittleEndian.Uint32(src[0:])),
			Seq:    Seq(binary.LittleEndian.Uint64(src[4:])),
		},
		Timestamp:   int64(binary.LittleEndian.Uint64(src[12:])),
		Version:     Version(binary.LittleEndian.Uint32(src[20:])),
		Speculative: src[24]&flagSpeculative != 0,
		Key:         binary.LittleEndian.Uint64(src[25:]),
	}
	if plen > 0 {
		e.Payload = src[headerSize : headerSize+int(plen)]
	}
	if traced {
		e.Trace = binary.LittleEndian.Uint64(src[total-traceSize:])
	}
	return e, total, nil
}

// EncodeBatch appends a length-prefixed sequence of events to dst.
func EncodeBatch(dst []byte, events []Event) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(events)))
	dst = append(dst, n[:]...)
	for _, e := range events {
		dst = e.Encode(dst)
	}
	return dst
}

// DecodeBatch parses a batch produced by EncodeBatch. Payloads alias src.
func DecodeBatch(src []byte) ([]Event, int, error) {
	if len(src) < 4 {
		return nil, 0, ErrShortBuffer
	}
	n := binary.LittleEndian.Uint32(src)
	off := 4
	events := make([]Event, 0, n)
	for i := uint32(0); i < n; i++ {
		e, consumed, err := Decode(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("batch element %d: %w", i, err)
		}
		events = append(events, e)
		off += consumed
	}
	return events, off, nil
}
