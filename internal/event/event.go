// Package event defines the event model shared by every StreamMine
// subsystem: globally unique event identifiers, application timestamps,
// speculation metadata (speculative flag plus a version counter that
// distinguishes successive speculative re-emissions of the same logical
// event), and a compact binary codec used both by the TCP transport and by
// the decision log.
//
// An event is *final* when the operator that produced it guarantees the
// event will never change: after a failure, a re-emitted final event is
// byte-identical to the original and can be silently dropped by receivers
// (precise recovery, paper §2.2). An event is *speculative* when it may
// still be revoked or replaced by a later version.
package event

import (
	"bytes"
	"fmt"
	"strconv"
)

// SourceID identifies the operator instance that created an event.
type SourceID uint32

// Seq is a per-source monotonically increasing sequence number.
type Seq uint64

// ID uniquely identifies a logical event across the whole graph. Two
// physical events with the same ID are versions of the same logical event:
// at most one of them will ever become final.
type ID struct {
	Source SourceID
	Seq    Seq
}

// String renders the ID as "source:seq".
func (id ID) String() string {
	return strconv.FormatUint(uint64(id.Source), 10) + ":" +
		strconv.FormatUint(uint64(id.Seq), 10)
}

// Less orders IDs by (Source, Seq). It exists so deterministic tie-breaking
// is available wherever a total order over events is needed.
func (id ID) Less(other ID) bool {
	if id.Source != other.Source {
		return id.Source < other.Source
	}
	return id.Seq < other.Seq
}

// Version counts re-emissions of a logical event. The first emission is
// version 0; every rollback + re-execution that changes the event's content
// increments the version. A FINALIZE control message carries the version it
// finalizes, so a receiver can tell whether its speculative copy is already
// correct (same version → flip to final in place) or stale (lower version →
// wait for the replacement).
type Version uint32

// Event is a single data item flowing through the operator graph.
//
// Events are treated as immutable once emitted: operators must not mutate a
// received event's payload in place but create derived events instead. The
// engine relies on this to share one allocation across output buffers and
// downstream queues.
type Event struct {
	// ID identifies the logical event.
	ID ID
	// Timestamp is the application timestamp in ticks (the unit is defined
	// by the application; sources assign it). Commit order inside an
	// operator follows timestamps (paper §5, STM extension).
	Timestamp int64
	// Version is the speculation version of this physical emission.
	Version Version
	// Speculative marks an event that may still change. Final events
	// (Speculative == false) never change.
	Speculative bool
	// Key is an application routing key used by partitioning operators
	// (Split) and by sketch operators.
	Key uint64
	// Trace is the latency-attribution trace id: every output derived from
	// a source event inherits the source's trace id, so per-process span
	// logs can be stitched into one cross-process lineage. Zero means
	// untraced. Trace is derived deterministically from the source event ID
	// (TraceOf), so a post-crash deterministic re-emission produces the
	// same trace id and replay spans join the original lineage.
	Trace uint64
	// Payload is the opaque application content.
	Payload []byte
}

// TraceOf derives the trace id for a source event id. The derivation is a
// splitmix64 finalizer over the packed (source, seq) pair: well mixed so
// head-based sampling can threshold on it, deterministic so recovery
// re-derives the same id, and never zero (zero means untraced).
func TraceOf(id ID) uint64 {
	z := uint64(id.Source)<<48 ^ uint64(id.Seq) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// New returns a final event with the given identity and payload.
func New(id ID, ts int64, payload []byte) Event {
	return Event{ID: id, Timestamp: ts, Payload: payload}
}

// NewSpeculative returns a speculative event with version 0.
func NewSpeculative(id ID, ts int64, payload []byte) Event {
	return Event{ID: id, Timestamp: ts, Speculative: true, Payload: payload}
}

// Clone returns a deep copy of the event (payload included).
func (e Event) Clone() Event {
	c := e
	if e.Payload != nil {
		c.Payload = make([]byte, len(e.Payload))
		copy(c.Payload, e.Payload)
	}
	return c
}

// AsFinal returns a copy of the event marked final.
func (e Event) AsFinal() Event {
	e.Speculative = false
	return e
}

// NextVersion returns a copy of the event with the version incremented and
// the speculative flag set; used when a rollback re-emits a changed output.
func (e Event) NextVersion(payload []byte) Event {
	e.Version++
	e.Speculative = true
	e.Payload = payload
	return e
}

// SameContent reports whether two events carry identical observable content
// (everything except the speculative flag and version). Precise recovery
// requires that a re-emitted final duplicate satisfies SameContent with the
// original.
func (e Event) SameContent(other Event) bool {
	return e.ID == other.ID &&
		e.Timestamp == other.Timestamp &&
		e.Key == other.Key &&
		bytes.Equal(e.Payload, other.Payload)
}

// Before reports whether e precedes other in the canonical processing
// order: by timestamp, with the ID as a deterministic tie-breaker.
func (e Event) Before(other Event) bool {
	if e.Timestamp != other.Timestamp {
		return e.Timestamp < other.Timestamp
	}
	return e.ID.Less(other.ID)
}

// String renders a short human-readable description, for logs and tests.
func (e Event) String() string {
	spec := "final"
	if e.Speculative {
		spec = fmt.Sprintf("spec/v%d", e.Version)
	}
	return fmt.Sprintf("event{%s ts=%d %s %dB}", e.ID, e.Timestamp, spec, len(e.Payload))
}
