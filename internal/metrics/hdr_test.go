package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Index/upper must agree: every bucket's upper bound maps back to the
// same bucket, and bounds are strictly increasing.
func TestHDRBucketLayout(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < hdrBuckets; i++ {
		u := hdrUpper(i)
		if u <= prev {
			t.Fatalf("bucket %d upper %d not above previous %d", i, u, prev)
		}
		if u < math.MaxInt64 && hdrIndex(u) != i {
			t.Fatalf("hdrIndex(hdrUpper(%d)=%d) = %d", i, u, hdrIndex(u))
		}
		prev = u
	}
	// Boundary walk: index must be monotone non-decreasing around every
	// power of two.
	for exp := uint(0); exp < 62; exp++ {
		v := int64(1) << exp
		for _, d := range []int64{-1, 0, 1} {
			if v+d < 0 {
				continue
			}
			lo, hi := hdrIndex(v+d), hdrIndex(v+d+1)
			if hi < lo {
				t.Fatalf("index not monotone at %d: %d then %d", v+d, lo, hi)
			}
		}
	}
	if hdrIndex(math.MaxInt64) >= hdrBuckets {
		t.Fatal("max value overflows bucket array")
	}
}

// Quantiles must track a sorted-slice oracle within the documented
// relative error across magnitudes and bucket boundaries.
func TestHDRQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]int64{
		{0},          // single zero
		{5},          // single linear-region value
		{1 << 20},    // single log-region value
		{31, 32, 33}, // linear/log boundary straddle
	}
	// Mixed-magnitude random sets: uniform within octaves 0..40.
	for trial := 0; trial < 4; trial++ {
		vals := make([]int64, 5000)
		for i := range vals {
			octave := uint(rng.Intn(40))
			vals[i] = rng.Int63n(int64(1)<<octave + 1)
		}
		cases = append(cases, vals)
	}
	for ci, vals := range cases {
		h := NewHDR()
		var sum int64
		for _, v := range vals {
			h.Observe(v)
			sum += v
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if h.Count() != uint64(len(vals)) || h.Sum() != sum {
			t.Fatalf("case %d: count/sum = %d/%d, want %d/%d",
				ci, h.Count(), h.Sum(), len(vals), sum)
		}
		if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
			t.Fatalf("case %d: min/max = %d/%d, want %d/%d",
				ci, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			rank := int(math.Ceil(q*float64(len(sorted)))) - 1
			if rank < 0 {
				rank = 0
			}
			oracle := sorted[rank]
			got := h.Quantile(q)
			// The estimate is the bucket's upper bound (clamped to max):
			// never below the oracle's bucket lower bound, never more
			// than one bucket width above the oracle.
			lo := oracle - oracle/hdrHalfCount - 1
			hi := oracle + oracle/hdrHalfCount + 1
			if got < lo || got > hi {
				t.Fatalf("case %d q=%v: got %d, oracle %d (allowed [%d,%d])",
					ci, q, got, oracle, lo, hi)
			}
		}
	}
}

func TestHDRQuantileClampsToMax(t *testing.T) {
	h := NewHDR()
	h.Observe(1000) // bucket upper bound is above 1000
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %d, want exact max 1000", got)
	}
	if h.Quantile(0.5) != 1000 {
		t.Fatalf("Quantile(0.5) = %d, want 1000", h.Quantile(0.5))
	}
}

func TestHDREmptyAndNil(t *testing.T) {
	var nilH *HDR
	nilH.Observe(5) // must not panic
	nilH.Record(time.Second)
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 {
		t.Fatal("nil HDR not inert")
	}
	h := NewHDR()
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Min() != 0 || h.Sum() != 0 {
		t.Fatal("empty HDR reports observations")
	}
	h.Observe(-5) // clamps to 0
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative clamp: count=%d max=%d", h.Count(), h.Max())
	}
}

func TestHDRConcurrentRecord(t *testing.T) {
	h := NewHDR()
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	var cum uint64
	for _, b := range h.Snapshot() {
		cum = b.Cum
	}
	if cum != goroutines*per {
		t.Fatalf("bucket cumulative total = %d, want %d", cum, goroutines*per)
	}
}

func TestHDRRecordAllocFree(t *testing.T) {
	h := NewHDR()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Observe allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Record(42 * time.Microsecond) }); n != 0 {
		t.Fatalf("Record allocates %v per call", n)
	}
}

func BenchmarkHDRRecord(b *testing.B) {
	h := NewHDR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// Registry exposition: HDR series emit Prometheus classic-histogram text
// with cumulative le buckets in seconds, raw series unscaled.
func TestRegistryHDRExposition(t *testing.T) {
	r := NewRegistry()
	lat := r.HDR("rt_latency", "round trip latency")
	lat.Record(1 * time.Microsecond)
	lat.Record(2 * time.Microsecond)
	lat.Record(1 * time.Millisecond)
	depth := r.HDRCounts("spec_depth", "open speculations")
	depth.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE rt_latency histogram",
		"rt_latency_bucket{le=\"+Inf\"} 3",
		"rt_latency_count 3",
		"# TYPE spec_depth histogram",
		"spec_depth_bucket{le=\"3\"} 1",
		"spec_depth_sum 3",
		"spec_depth_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Bucket lines must be cumulative and non-decreasing.
	var last float64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "rt_latency_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %q after %v", line, last)
		}
		last = v
	}
	if v, ok := r.Value("rt_latency", nil); !ok || v != 3 {
		t.Fatalf("Value(rt_latency) = %v/%v, want 3", v, ok)
	}
	// Re-registering resolves the same handle.
	if r.HDR("rt_latency", "") != lat {
		t.Fatal("re-registration returned a different handle")
	}
}
