// Package metrics provides the measurement primitives used by the
// experiment harness: lock-free log-bucketed latency histograms,
// throughput counters, and time series for latency-evolution plots.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of logarithmic buckets: bucket i covers
// latencies in [2^i, 2^(i+1)) nanoseconds, up to ~73 minutes at i=52.
const histBuckets = 53

// Histogram is a concurrent latency histogram with power-of-two buckets.
// The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	maxNS   atomic.Uint64
	minNS   atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minNS.Store(math.MaxUint64)
	return h
}

func bucketOf(ns uint64) int {
	b := 0
	for v := ns; v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.minNS.Load()
		if ns >= cur || h.minNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total recorded latency.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.maxNS.Load())
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.minNS.Load())
}

// Percentile returns an upper bound of the p-quantile (p in [0,1]),
// accurate to one power-of-two bucket. The bound never exceeds the true
// recorded maximum: when the rank lands in the top occupied bucket the
// observed max is returned instead of the bucket's upper bound, so p99
// and p100 are exact for unimodal tails.
func (h *Histogram) Percentile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			bound := uint64(1) << uint(i+1) // bucket upper bound
			// The global max lives in the highest occupied bucket; if
			// this bucket's bound exceeds it, the rank landed there and
			// the max is the tight answer.
			if max := h.maxNS.Load(); max < bound {
				return time.Duration(max)
			}
			return time.Duration(bound)
		}
	}
	return time.Duration(h.maxNS.Load())
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(0.50), h.Percentile(0.99), h.Max())
}

// Counter is a concurrent event counter.
type Counter struct {
	n atomic.Uint64
}

// Add increments by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Throughput measures completed events per second over the interval
// between Start and now.
type Throughput struct {
	start time.Time
	n     atomic.Uint64
}

// NewThroughput starts measuring now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Inc records one completed event.
func (t *Throughput) Inc() { t.n.Add(1) }

// Add records n completed events.
func (t *Throughput) Add(n uint64) { t.n.Add(n) }

// Count returns the raw number of completions.
func (t *Throughput) Count() uint64 { return t.n.Load() }

// PerSecond returns the average rate since Start.
func (t *Throughput) PerSecond() float64 {
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.n.Load()) / elapsed
}

// Sample is one (elapsed time, value) pair in a time series.
type Sample struct {
	At    time.Duration
	Value float64
}

// TimeSeries is a concurrent append-only series of samples, used by the
// latency-evolution experiments (paper Fig. 4 and 5).
type TimeSeries struct {
	start time.Time

	mu      sync.Mutex
	samples []Sample
}

// NewTimeSeries anchors the series at the current instant.
func NewTimeSeries() *TimeSeries {
	return &TimeSeries{start: time.Now()}
}

// Add appends a sample stamped with the elapsed time since creation.
func (ts *TimeSeries) Add(value float64) {
	at := time.Since(ts.start)
	ts.mu.Lock()
	ts.samples = append(ts.samples, Sample{At: at, Value: value})
	ts.mu.Unlock()
}

// Samples returns a copy of the series in insertion order.
func (ts *TimeSeries) Samples() []Sample {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Sample, len(ts.samples))
	copy(out, ts.samples)
	return out
}

// Buckets aggregates the series into fixed-width time buckets, returning
// the mean value per bucket (missing buckets yield NaN). Used to print the
// paper's per-second series.
func (ts *TimeSeries) Buckets(width time.Duration) []float64 {
	samples := ts.Samples()
	if len(samples) == 0 {
		return nil
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].At < samples[j].At })
	last := samples[len(samples)-1].At
	n := int(last/width) + 1
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, s := range samples {
		b := int(s.At / width)
		sums[b] += s.Value
		counts[b]++
	}
	out := make([]float64, n)
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}
