package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HDR bucket layout: values below subCount land in one-value-wide linear
// buckets; above that, each power-of-two octave is split into
// subCount/2 equal sub-buckets, so the relative quantile error is
// bounded by 2/subCount (6.25% with subBits = 5) at any magnitude.
const (
	hdrSubBits   = 5
	hdrSubCount  = 1 << hdrSubBits // 32 linear buckets / octave
	hdrHalfCount = hdrSubCount / 2 // log-region sub-buckets / octave
	// 58 octaves above the linear region: the final bucket's upper bound
	// is (2·hdrHalfCount << 58) − 1 = MaxInt64 exactly, covering the full
	// non-negative int64 range without overflow.
	hdrMaxExp  = 63 - hdrSubBits
	hdrBuckets = hdrSubCount + hdrMaxExp*hdrHalfCount
)

// HDR is a lock-free log-bucketed (HdrHistogram-style) histogram of
// non-negative int64 values. Record and Observe are wait-free, allocation
// free and safe for concurrent use; readers (Quantile, Buckets, the
// Prometheus exposition) walk the bucket array without stopping writers.
// The zero value is ready to use. A nil *HDR is inert.
//
// Unlike the coarse power-of-two Histogram, HDR keeps enough resolution
// (≤ 6.25% relative error) to report meaningful tail quantiles, and its
// bucket array has a Prometheus classic-histogram text exposition
// (_bucket/_sum/_count) via Registry.HDR.
type HDR struct {
	count atomic.Uint64
	sum   atomic.Int64
	max   atomic.Int64
	// minP1 holds min+1 so the zero value means "no observations yet"
	// while still allowing 0 to be recorded.
	minP1   atomic.Int64
	buckets [hdrBuckets]atomic.Uint64
}

// NewHDR returns an empty histogram.
func NewHDR() *HDR { return &HDR{} }

// hdrIndex maps a non-negative value to its bucket index.
func hdrIndex(v int64) int {
	if v < hdrSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - hdrSubBits
	sub := int(uint64(v)>>uint(exp)) - hdrHalfCount
	i := hdrSubCount + (exp-1)*hdrHalfCount + sub
	if i >= hdrBuckets {
		return hdrBuckets - 1
	}
	return i
}

// hdrUpper returns the inclusive upper bound of bucket i.
func hdrUpper(i int) int64 {
	if i < hdrSubCount {
		return int64(i)
	}
	exp := (i-hdrSubCount)/hdrHalfCount + 1
	sub := (i - hdrSubCount) % hdrHalfCount
	u := (uint64(hdrHalfCount+sub+1) << uint(exp)) - 1
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// Observe adds one raw value. Negative values clamp to zero.
func (h *HDR) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[hdrIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.minP1.Load()
		if (cur != 0 && cur-1 <= v) || h.minP1.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// Record adds one duration observation (in nanoseconds).
func (h *HDR) Record(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *HDR) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *HDR) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value (0 when empty).
func (h *HDR) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest observed value (0 when empty).
func (h *HDR) Min() int64 {
	if h == nil {
		return 0
	}
	p1 := h.minP1.Load()
	if p1 == 0 {
		return 0
	}
	return p1 - 1
}

// Mean returns the arithmetic mean of observed values (0 when empty).
func (h *HDR) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in (0,1]) of the
// observed values, clamped to the observed maximum so outliers do not get
// inflated to their bucket boundary. Returns 0 when empty.
func (h *HDR) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < hdrBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			u := hdrUpper(i)
			if m := h.max.Load(); u > m {
				u = m
			}
			return u
		}
	}
	return h.max.Load()
}

// QuantileDuration is Quantile for nanosecond-valued histograms.
func (h *HDR) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// HDRBucket is one occupied bucket in a snapshot: the cumulative count of
// observations ≤ Upper.
type HDRBucket struct {
	Upper int64
	Cum   uint64
}

// Snapshot returns the occupied buckets in ascending order with
// cumulative counts, for exposition. Allocates; not a hot-path call.
func (h *HDR) Snapshot() []HDRBucket {
	if h == nil {
		return nil
	}
	var out []HDRBucket
	var cum uint64
	for i := 0; i < hdrBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, HDRBucket{Upper: hdrUpper(i), Cum: cum})
	}
	return out
}
