package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Lifecycle phases recorded by the Tracer. One event flowing through the
// engine produces (at minimum) ingress → exec → spec_out/final_out →
// commit, with finalize/revoke/abort phases appearing when speculation
// resolves or fails. externalize is recorded by the process boundary
// (sink subscriber) when an output leaves the system.
const (
	PhaseIngress     = "ingress"     // event admitted by a node's dispatcher
	PhaseExec        = "exec"        // one (speculative) execution finished
	PhaseSpecOut     = "spec_out"    // output sent downstream speculative
	PhaseFinalOut    = "final_out"   // output sent downstream final
	PhaseFinalize    = "finalize"    // FINALIZE issued for a prior spec output
	PhaseRevoke      = "revoke"      // output revoked (rollback cascade)
	PhaseCommit      = "commit"      // task committed in arrival order
	PhaseAbort       = "abort"       // task cancelled / rolled back
	PhaseExternalize = "externalize" // output left the system at a sink
)

// Span is one JSONL record written by the Tracer: a point event in an
// event's lifecycle. Offline tooling groups spans by Event and subtracts
// timestamps for a per-phase latency breakdown (see docs/OBSERVABILITY.md).
type Span struct {
	// TS is nanoseconds since the tracer was created.
	TS int64 `json:"ts_ns"`
	// Node is the graph node name where the phase happened ("" at
	// process boundaries such as externalization).
	Node string `json:"node,omitempty"`
	// Event identifies the subject event ("source:seq").
	Event string `json:"event"`
	// Phase is one of the Phase* constants.
	Phase string `json:"phase"`
	// Info carries phase-specific detail (input index, abort cause,
	// output event id, ...).
	Info string `json:"info,omitempty"`
}

// Tracer records event-lifecycle spans as JSON lines. It is opt-in and
// deliberately not allocation-free: enabling it trades throughput for a
// complete per-event latency breakdown. A nil *Tracer is inert, so call
// sites guard with a plain nil check.
type Tracer struct {
	start time.Time
	count atomic.Uint64

	mu  sync.Mutex
	buf *bufio.Writer
}

// NewTracer starts a tracer writing JSONL spans to w. The caller owns w
// and must call Flush before closing it.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{start: time.Now(), buf: bufio.NewWriter(w)}
}

// Record writes one span stamped with the elapsed time since the tracer
// was created. Safe for concurrent use; nil receivers are no-ops.
func (t *Tracer) Record(node, event, phase, info string) {
	if t == nil {
		return
	}
	s := Span{
		TS:    time.Since(t.start).Nanoseconds(),
		Node:  node,
		Event: event,
		Phase: phase,
		Info:  info,
	}
	line, err := json.Marshal(s)
	if err != nil {
		return // a Span of plain strings cannot fail to marshal
	}
	t.mu.Lock()
	t.buf.Write(line)
	t.buf.WriteByte('\n')
	t.mu.Unlock()
	t.count.Add(1)
}

// Count returns the number of spans recorded.
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Flush drains buffered spans to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf.Flush()
}

// ReadSpans parses a JSONL trace produced by a Tracer, for offline
// analysis and tests.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, s)
	}
}
