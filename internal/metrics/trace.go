package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Lifecycle phases recorded by the Tracer. One event flowing through the
// engine produces (at minimum) ingress → exec → spec_out/final_out →
// commit, with finalize/revoke/abort phases appearing when speculation
// resolves or fails. externalize is recorded by the process boundary
// (sink subscriber) when an output leaves the system. clock and epoch are
// process-level records used by offline merging: clock is the per-process
// header stamped at tracer creation, epoch marks a partition (re)build so
// spans can be attributed to the right incarnation after a failover.
const (
	PhaseIngress     = "ingress"     // event admitted by a node's dispatcher
	PhaseExec        = "exec"        // one (speculative) execution finished
	PhaseSpecOut     = "spec_out"    // output sent downstream speculative
	PhaseFinalOut    = "final_out"   // output sent downstream final
	PhaseFinalize    = "finalize"    // FINALIZE issued for a prior spec output
	PhaseRevoke      = "revoke"      // output revoked (rollback cascade)
	PhaseCommit      = "commit"      // task committed in arrival order
	PhaseAbort       = "abort"       // task cancelled / rolled back
	PhaseExternalize = "externalize" // output left the system at a sink
	PhaseClock       = "clock"       // per-process tracer header record
	PhaseEpoch       = "epoch"       // partition epoch started on this process
)

// Span is one JSONL record written by the Tracer: a point event in an
// event's lifecycle. Offline tooling groups spans by trace id (or by
// Event for legacy traces) and subtracts timestamps for a per-phase
// latency breakdown (see docs/OBSERVABILITY.md and cmd/tracetool).
type Span struct {
	// TS is a wall-clock unix-nanosecond timestamp. (Traces written
	// before the clock header existed carried nanoseconds since tracer
	// start instead; ReadSpans parses both, and consumers distinguish
	// them by the presence of a PhaseClock record.)
	TS int64 `json:"ts_ns"`
	// Proc names the writing process ("" for single-process traces).
	Proc string `json:"proc,omitempty"`
	// Node is the graph node name where the phase happened ("" at
	// process boundaries such as externalization).
	Node string `json:"node,omitempty"`
	// Trace is the event-lineage trace id in lowercase hex ("" for
	// untraced spans and process-level records).
	Trace string `json:"trace,omitempty"`
	// Event identifies the subject event ("source:seq").
	Event string `json:"event,omitempty"`
	// Phase is one of the Phase* constants.
	Phase string `json:"phase"`
	// Info carries phase-specific detail (input index, abort cause,
	// causal parent as "from=<id>", ...).
	Info string `json:"info,omitempty"`
}

// Tracer records event-lifecycle spans as JSON lines. It is opt-in and
// deliberately not allocation-free: enabling it trades throughput for a
// complete per-event latency breakdown. A nil *Tracer is inert, so call
// sites guard with a plain nil check.
//
// Timestamps are wall-clock unix nanoseconds, computed as a wall-clock
// anchor captured at creation plus the monotonic elapsed time since, so
// they are monotonic within a process and comparable across processes up
// to host clock skew. The constructor writes one PhaseClock header record
// carrying the anchor, which offline merging uses to align files.
type Tracer struct {
	proc      string
	base      int64     // unix nanos at creation
	start     time.Time // monotonic anchor
	threshold atomic.Uint64
	autoFlush atomic.Bool
	count     atomic.Uint64
	sampled   atomic.Uint64

	// mirror, when set, receives a copy of every kept span after it is
	// written — the flight recorder samples lifecycle evidence from it.
	mirror atomic.Pointer[func(Span)]

	mu  sync.Mutex
	buf *bufio.Writer
}

// NewTracer starts a tracer writing JSONL spans to w. The caller owns w
// and must call Flush before closing it.
func NewTracer(w io.Writer) *Tracer { return NewTracerProc(w, "") }

// NewTracerProc starts a tracer labeled with a process name, stamped on
// every span so multi-process traces can be merged without relying on
// file names. The clock header record is written immediately.
func NewTracerProc(w io.Writer, proc string) *Tracer {
	now := time.Now()
	t := &Tracer{
		proc:  proc,
		base:  now.UnixNano(),
		start: now,
		buf:   bufio.NewWriter(w),
	}
	t.threshold.Store(math.MaxUint64) // keep every trace by default
	t.write(Span{
		TS:    t.base,
		Proc:  proc,
		Phase: PhaseClock,
		Info:  fmt.Sprintf("unix_ns=%d pid=%d", t.base, os.Getpid()),
	})
	return t
}

// SetSampling sets the head-based sampling rate in [0, 1]: a trace id is
// kept iff it falls under rate·2⁶⁴, so every process keeps the same
// subset of traces (trace ids are well-mixed hashes) and sampled
// lineages stay complete end to end. Untraced spans (trace id 0) and
// process-level records are always kept. Safe to call concurrently.
func (t *Tracer) SetSampling(rate float64) {
	if t == nil {
		return
	}
	switch {
	case rate >= 1:
		t.threshold.Store(math.MaxUint64)
	case rate <= 0:
		t.threshold.Store(0)
	default:
		t.threshold.Store(uint64(rate * float64(math.MaxUint64)))
	}
}

// SetAutoFlush makes every record flush through to the underlying writer.
// Cluster processes enable it so a SIGKILL loses at most one torn final
// line instead of a buffer full of spans.
func (t *Tracer) SetAutoFlush(on bool) {
	if t == nil {
		return
	}
	t.autoFlush.Store(on)
}

// Keeps reports whether spans for the given trace id pass the sampling
// filter. Call sites can use it to skip building span info strings for
// sampled-out traces.
func (t *Tracer) Keeps(trace uint64) bool {
	if t == nil {
		return false
	}
	return trace == 0 || trace <= t.threshold.Load()
}

// Record writes one untraced span. Safe for concurrent use; nil
// receivers are no-ops.
func (t *Tracer) Record(node, event, phase, info string) {
	t.RecordTrace(node, event, 0, phase, info)
}

// RecordTrace writes one span bound to an event-lineage trace id. Spans
// whose trace id is filtered out by SetSampling are dropped before any
// allocation. Safe for concurrent use; nil receivers are no-ops.
func (t *Tracer) RecordTrace(node, event string, trace uint64, phase, info string) {
	if t == nil {
		return
	}
	if trace != 0 && trace > t.threshold.Load() {
		t.sampled.Add(1)
		return
	}
	s := Span{
		TS:    t.base + time.Since(t.start).Nanoseconds(),
		Proc:  t.proc,
		Node:  node,
		Event: event,
		Phase: phase,
		Info:  info,
	}
	if trace != 0 {
		s.Trace = strconv.FormatUint(trace, 16)
	}
	t.write(s)
	t.count.Add(1)
	if m := t.mirror.Load(); m != nil {
		(*m)(s)
	}
}

// SetMirror installs a secondary consumer that observes every kept span
// (sampled-out spans never reach it). The consumer must be cheap and
// must not block — it runs on the recording goroutine. Nil uninstalls.
// Safe to call concurrently; nil receivers are no-ops.
func (t *Tracer) SetMirror(fn func(Span)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.mirror.Store(nil)
		return
	}
	t.mirror.Store(&fn)
}

// write marshals and appends one record (header or span).
func (t *Tracer) write(s Span) {
	line, err := json.Marshal(s)
	if err != nil {
		return // a Span of plain strings cannot fail to marshal
	}
	t.mu.Lock()
	t.buf.Write(line)
	t.buf.WriteByte('\n')
	if t.autoFlush.Load() {
		t.buf.Flush()
	}
	t.mu.Unlock()
}

// Count returns the number of spans recorded (the clock header record is
// not counted).
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// SampledOut returns the number of spans dropped by the sampling filter.
func (t *Tracer) SampledOut() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Flush drains buffered spans to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf.Flush()
}

// ReadSpans parses a JSONL trace produced by a Tracer, for offline
// analysis and tests. Both the wall-clock form (with a PhaseClock header)
// and the legacy relative-timestamp form decode into the same Span shape.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, s)
	}
}
