package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Gauge is a concurrent instantaneous value (e.g. queue depth, buffer
// retention). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc increments by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Labels attach dimensions to a metric series. Every distinct
// (name, labels) pair is an independent series; labels are rendered
// sorted by key in the exposition output.
type Labels map[string]string

// seriesKind discriminates what a registered series holds.
type seriesKind int

const (
	kindCounter seriesKind = iota + 1
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindHDR
)

// exposition type name for the # TYPE line.
func (k seriesKind) typeName() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHDR:
		return "histogram"
	default:
		return "summary"
	}
}

// series is one registered metric stream: a name, a rendered label set
// and exactly one value source.
type series struct {
	name      string
	labels    string // `key="val",...` sorted by key; "" when unlabeled
	kind      seriesKind
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	hdr       *HDR
	hdrRaw    bool // raw-unit HDR (counts, depths) vs nanoseconds
	counterFn func() uint64
	gaugeFn   func() float64
}

// Registry is a concurrent collection of named metric series with a
// Prometheus-style text exposition. Registration is cheap but not
// hot-path; callers resolve handles (Counter/Gauge/Histogram pointers)
// once and then update them with plain atomic operations.
//
// Registering the same (name, labels) pair again returns the existing
// handle for counters, gauges and histograms (so independent subsystems
// can share a series), and *rebinds* func-backed series (so a freshly
// built engine can take over the series of a stopped one). Registering
// the same pair with a different metric kind panics: that is a
// programming error, not a runtime condition.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*series
	order []*series
	help  map[string]string // per name, first registration wins
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey: make(map[string]*series),
		help:  make(map[string]string),
	}
}

// renderLabels renders a label set in canonical (sorted) form.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote and newline only. Go's %q
// would over-escape (\t, non-ASCII, ...), which scrapers then read as
// literal backslash sequences.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only (quotes are
// legal in HELP).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	var b strings.Builder
	b.Grow(len(h) + 2)
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(h[i])
		}
	}
	return b.String()
}

// register adds or resolves a series under the registry lock.
func (r *Registry) register(name, help string, labels Labels, kind seriesKind) *series {
	key := name + "{" + renderLabels(labels) + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind.typeName() != kind.typeName() {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)",
				key, kind.typeName(), s.kind.typeName()))
		}
		s.kind = kind // funcs rebind below; handle kinds keep their slot
		return s
	}
	s := &series{name: name, labels: renderLabels(labels), kind: kind}
	r.byKey[key] = s
	r.order = append(r.order, s)
	if _, ok := r.help[name]; !ok && help != "" {
		r.help[name] = help
	}
	return s
}

// Counter registers (or resolves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith registers (or resolves) a counter series with labels.
func (r *Registry) CounterWith(name, help string, labels Labels) *Counter {
	s := r.register(name, help, labels, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or resolves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith registers (or resolves) a gauge series with labels.
func (r *Registry) GaugeWith(name, help string, labels Labels) *Gauge {
	s := r.register(name, help, labels, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or resolves) an unlabeled latency histogram,
// exposed in the text format as a summary (quantiles + sum + count, in
// seconds).
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramWith(name, help, nil)
}

// HistogramWith registers (or resolves) a histogram series with labels.
func (r *Registry) HistogramWith(name, help string, labels Labels) *Histogram {
	s := r.register(name, help, labels, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram()
	}
	return s.hist
}

// HDR registers (or resolves) an unlabeled high-resolution latency
// histogram, recorded in nanoseconds and exposed as a Prometheus classic
// histogram (_bucket/_sum/_count, in seconds).
func (r *Registry) HDR(name, help string) *HDR {
	return r.HDRWith(name, help, nil)
}

// HDRWith registers (or resolves) an HDR latency series with labels.
func (r *Registry) HDRWith(name, help string, labels Labels) *HDR {
	return r.hdrWith(name, help, labels, false)
}

// HDRCounts registers (or resolves) an HDR series holding raw (unitless)
// values — queue depths, cascade sizes — exposed as a Prometheus classic
// histogram with unscaled bucket bounds.
func (r *Registry) HDRCounts(name, help string) *HDR {
	return r.hdrWith(name, help, nil, true)
}

// HDRCountsWith registers (or resolves) a raw-unit HDR series with
// labels.
func (r *Registry) HDRCountsWith(name, help string, labels Labels) *HDR {
	return r.hdrWith(name, help, labels, true)
}

func (r *Registry) hdrWith(name, help string, labels Labels, raw bool) *HDR {
	s := r.register(name, help, labels, kindHDR)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hdr == nil {
		s.hdr = NewHDR()
		s.hdrRaw = raw
	}
	return s.hdr
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time (for counters that already live elsewhere as atomics —
// zero hot-path cost). Re-registering rebinds the series to fn.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	s := r.register(name, help, labels, kindCounterFunc)
	r.mu.Lock()
	s.counterFn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at exposition time.
// Re-registering rebinds the series to fn.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.register(name, help, labels, kindGaugeFunc)
	r.mu.Lock()
	s.gaugeFn = fn
	r.mu.Unlock()
}

// Point is one series in a Snapshot. For histogram series Value is the
// observation count and Quantiles/Sum carry the latency summary.
type Point struct {
	Name   string
	Labels string // canonical `key="val",...` form, "" when unlabeled
	Type   string // "counter", "gauge", "summary" or "histogram"
	Value  float64
	// Quantiles maps q in (0,1] to the recorded latency; nil for
	// counters and gauges.
	Quantiles map[float64]time.Duration
	Sum       time.Duration
	// Buckets holds the occupied cumulative buckets of an HDR series
	// ("histogram" type); nil otherwise.
	Buckets []HDRBucket
	// RawUnit marks HDR series recorded in raw units rather than
	// nanoseconds (bucket bounds and sum are exposed unscaled).
	RawUnit bool
}

// snapshotLocked copies the series slice under the lock; value reads
// happen outside it so func-backed series may take their own locks.
func (r *Registry) seriesSnapshot() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*series, len(r.order))
	copy(out, r.order)
	return out
}

// Snapshot reads every series and returns them sorted by name then
// label set.
func (r *Registry) Snapshot() []Point {
	sers := r.seriesSnapshot()
	out := make([]Point, 0, len(sers))
	for _, s := range sers {
		p := Point{Name: s.name, Labels: s.labels, Type: s.kind.typeName()}
		switch s.kind {
		case kindCounter:
			p.Value = float64(s.counter.Value())
		case kindCounterFunc:
			p.Value = float64(s.counterFn())
		case kindGauge:
			p.Value = float64(s.gauge.Value())
		case kindGaugeFunc:
			p.Value = s.gaugeFn()
		case kindHistogram:
			p.Value = float64(s.hist.Count())
			p.Sum = s.hist.Sum()
			p.Quantiles = map[float64]time.Duration{
				0.5:  s.hist.Percentile(0.5),
				0.9:  s.hist.Percentile(0.9),
				0.99: s.hist.Percentile(0.99),
				1:    s.hist.Max(),
			}
		case kindHDR:
			p.Value = float64(s.hdr.Count())
			p.Sum = time.Duration(s.hdr.Sum())
			p.RawUnit = s.hdrRaw
			p.Buckets = s.hdr.Snapshot()
			p.Quantiles = map[float64]time.Duration{
				0.5:  time.Duration(s.hdr.Quantile(0.5)),
				0.9:  time.Duration(s.hdr.Quantile(0.9)),
				0.99: time.Duration(s.hdr.Quantile(0.99)),
				1:    time.Duration(s.hdr.Max()),
			}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// Value returns the current value of a counter or gauge series (the
// observation count for histograms), and whether the series exists.
func (r *Registry) Value(name string, labels Labels) (float64, bool) {
	want := renderLabels(labels)
	for _, p := range r.Snapshot() {
		if p.Name == name && p.Labels == want {
			return p.Value, true
		}
	}
	return 0, false
}

// secs renders a nanosecond quantity as seconds in minimal float form.
func secs(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// formatValue renders a counter/gauge sample value.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges emit one sample per
// series; histograms emit a summary: quantile samples (0.5, 0.9, 0.99
// and 1 = the recorded maximum) plus _sum and _count, all latencies in
// seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	points := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	lastName := ""
	for _, p := range points {
		if p.Name != lastName {
			if h := help[p.Name]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Name, escapeHelp(h))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Name, p.Type)
			lastName = p.Name
		}
		switch p.Type {
		case "histogram":
			scale := func(v int64) string { return secs(time.Duration(v)) }
			if p.RawUnit {
				scale = func(v int64) string {
					return strconv.FormatInt(v, 10)
				}
			}
			for _, bk := range p.Buckets {
				fmt.Fprintf(&b, "%s_bucket{%sle=\"%s\"} %d\n",
					p.Name, joinLabels(p.Labels), scale(bk.Upper), bk.Cum)
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %s\n",
				p.Name, joinLabels(p.Labels), formatValue(p.Value))
			if p.RawUnit {
				fmt.Fprintf(&b, "%s_sum%s %d\n", p.Name, wrapLabels(p.Labels), int64(p.Sum))
			} else {
				fmt.Fprintf(&b, "%s_sum%s %s\n", p.Name, wrapLabels(p.Labels), secs(p.Sum))
			}
			fmt.Fprintf(&b, "%s_count%s %s\n", p.Name, wrapLabels(p.Labels), formatValue(p.Value))
		case "summary":
			for _, q := range []float64{0.5, 0.9, 0.99, 1} {
				fmt.Fprintf(&b, "%s{%squantile=\"%s\"} %s\n",
					p.Name, joinLabels(p.Labels),
					strconv.FormatFloat(q, 'g', -1, 64), secs(p.Quantiles[q]))
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", p.Name, wrapLabels(p.Labels), secs(p.Sum))
			fmt.Fprintf(&b, "%s_count%s %s\n", p.Name, wrapLabels(p.Labels), formatValue(p.Value))
		default:
			fmt.Fprintf(&b, "%s%s %s\n", p.Name, wrapLabels(p.Labels), formatValue(p.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// wrapLabels renders a canonical label string as `{...}` or "".
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels renders a canonical label string as a prefix for an
// additional label (`a="b",` or "").
func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}
