package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(0.5) != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Record(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 3*time.Millisecond || h.Min() != time.Millisecond {
		t.Fatalf("Max/Min = %v/%v", h.Max(), h.Min())
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	h := NewHistogram()
	// 99 fast observations, 1 slow.
	for i := 0; i < 99; i++ {
		h.Record(100 * time.Microsecond)
	}
	h.Record(50 * time.Millisecond)
	p50 := h.Percentile(0.50)
	if p50 < 100*time.Microsecond || p50 > 300*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈128µs bucket bound", p50)
	}
	p999 := h.Percentile(0.999)
	if p999 < 50*time.Millisecond {
		t.Fatalf("p999 = %v, want >= 50ms", p999)
	}
	// Out-of-range p values clamp.
	if h.Percentile(-1) == 0 || h.Percentile(2) == 0 {
		t.Fatal("clamped percentiles returned 0")
	}
}

func TestBucketOf(t *testing.T) {
	tests := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
	}
	for _, tt := range tests {
		if got := bucketOf(tt.ns); got != tt.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tt.ns, got, tt.want)
		}
	}
	// Enormous values must stay in range.
	if got := bucketOf(math.MaxUint64); got != histBuckets-1 {
		t.Errorf("bucketOf(max) = %d, want %d", got, histBuckets-1)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if h.Max() < 999*time.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(100)
	tp.Inc()
	if tp.Count() != 101 {
		t.Fatalf("Count = %d", tp.Count())
	}
	time.Sleep(10 * time.Millisecond)
	rate := tp.PerSecond()
	if rate <= 0 || rate > 101/0.005 {
		t.Fatalf("PerSecond = %v out of plausible range", rate)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(1)
	time.Sleep(2 * time.Millisecond)
	ts.Add(3)
	samples := ts.Samples()
	if len(samples) != 2 {
		t.Fatalf("Samples = %d", len(samples))
	}
	if samples[1].At <= samples[0].At {
		t.Fatal("sample times not increasing")
	}
	if samples[0].Value != 1 || samples[1].Value != 3 {
		t.Fatalf("values = %v", samples)
	}
}

func TestTimeSeriesBuckets(t *testing.T) {
	ts := NewTimeSeries()
	// Inject samples directly for determinism.
	ts.samples = []Sample{
		{At: 0, Value: 10},
		{At: 500 * time.Microsecond, Value: 20},
		{At: 2500 * time.Microsecond, Value: 40},
	}
	b := ts.Buckets(time.Millisecond)
	if len(b) != 3 {
		t.Fatalf("buckets = %v", b)
	}
	if b[0] != 15 {
		t.Fatalf("bucket 0 mean = %v, want 15", b[0])
	}
	if !math.IsNaN(b[1]) {
		t.Fatalf("bucket 1 = %v, want NaN", b[1])
	}
	if b[2] != 40 {
		t.Fatalf("bucket 2 = %v, want 40", b[2])
	}
	empty := NewTimeSeries()
	if empty.Buckets(time.Second) != nil {
		t.Fatal("empty Buckets != nil")
	}
}
