package metrics

import (
	"strings"
	"testing"
)

// TestExpositionEscapingGolden pins the exact escaping of the Prometheus
// text format: label values escape backslash, double quote and newline —
// and nothing else (tabs and non-ASCII pass through verbatim, unlike
// Go's %q) — while HELP escapes backslash and newline only.
func TestExpositionEscapingGolden(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("esc_total", "Line one.\nLine \\two\\ with \"quotes\".", Labels{
		"quoted":  `say "hi"`,
		"newline": "a\nb",
		"slash":   `c:\temp\x`,
		"tab":     "a\tb",
		"utf8":    "bücket→7",
	}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`# HELP esc_total Line one.\nLine \\two\\ with "quotes".`,
		`newline="a\nb"`,
		`quoted="say \"hi\""`,
		`slash="c:\\temp\\x"`,
		"tab=\"a\tb\"",
		`utf8="bücket→7"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Escaping must keep every sample on one physical line.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, " 1") && !strings.Contains(line, "} ") {
			t.Errorf("torn exposition line: %q", line)
		}
	}
}

// unescapeLabelValue inverts escapeLabelValue for the fuzz round-trip.
func unescapeLabelValue(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	esc := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if esc {
			if c == 'n' {
				b.WriteByte('\n')
			} else {
				b.WriteByte(c)
			}
			esc = false
			continue
		}
		if c == '\\' {
			esc = true
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// FuzzLabelValueEscaping checks the escaping invariants for arbitrary
// values: no raw newline or unescaped quote survives (the sample stays
// one parseable line), and unescaping restores the original value.
func FuzzLabelValueEscaping(f *testing.F) {
	for _, seed := range []string{``, `plain`, `with "quote"`, "multi\nline", `back\slash`, `\"`, "\\\n\"", "\x00\xff", "λ→µ"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v string) {
		esc := escapeLabelValue(v)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("escaped value contains a raw newline: %q", esc)
		}
		for i := 0; i < len(esc); i++ {
			if esc[i] != '"' {
				continue
			}
			// Count the backslash run preceding this quote: even = raw quote.
			run := 0
			for j := i - 1; j >= 0 && esc[j] == '\\'; j-- {
				run++
			}
			if run%2 == 0 {
				t.Fatalf("unescaped quote at %d in %q", i, esc)
			}
		}
		if got := unescapeLabelValue(esc); got != v {
			t.Fatalf("round-trip mismatch: %q -> %q -> %q", v, esc, got)
		}
	})
}

// FuzzHelpEscaping checks HELP text stays on one line and round-trips.
func FuzzHelpEscaping(f *testing.F) {
	for _, seed := range []string{``, `plain help.`, "two\nlines", `tail\`, "mixed \\\n end"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, h string) {
		esc := escapeHelp(h)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("escaped help contains a raw newline: %q", esc)
		}
		if got := unescapeLabelValue(esc); got != h {
			t.Fatalf("round-trip mismatch: %q -> %q -> %q", h, esc, got)
		}
	})
}
