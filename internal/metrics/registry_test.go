package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryHandlesAreShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "ignored second help")
	if a != b {
		t.Fatal("same name resolved to different counter handles")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter = %d, want 1", b.Value())
	}
	l1 := r.CounterWith("y_total", "", Labels{"cause": "conflict"})
	l2 := r.CounterWith("y_total", "", Labels{"cause": "revoke"})
	if l1 == l2 {
		t.Fatal("distinct label sets resolved to the same handle")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryFuncRebinds(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("lag", "", nil, func() float64 { return 1 })
	r.GaugeFunc("lag", "", nil, func() float64 { return 2 })
	v, ok := r.Value("lag", nil)
	if !ok || v != 2 {
		t.Fatalf("rebound gauge func = %v (ok=%v), want 2", v, ok)
	}
}

// TestRegistryConcurrent hammers registration, updates and scrapes from
// many goroutines; run under -race it is the registry's thread-safety
// proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var writers sync.WaitGroup
	for i := 0; i < 8; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared_total", "").Inc()
				r.CounterWith("labeled_total", "", Labels{"worker": string(rune('a' + i))}).Inc()
				r.Gauge("depth", "").Set(int64(j))
				r.Histogram("lat", "").Record(time.Duration(j+1) * time.Microsecond)
				r.GaugeFunc("fn", "", nil, func() float64 { return float64(j) })
			}
		}(i)
	}
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				r.Snapshot()
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-scraperDone

	if v, _ := r.Value("shared_total", nil); v != 8*500 {
		t.Fatalf("shared_total = %v, want %d", v, 8*500)
	}
	if v, _ := r.Value("lat", nil); v != 8*500 {
		t.Fatalf("lat count = %v, want %d", v, 8*500)
	}
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("demo_aborts_total", "Aborts by cause.", Labels{"cause": "conflict"}).Add(2)
	r.CounterWith("demo_aborts_total", "Aborts by cause.", Labels{"cause": "revoke"}).Add(1)
	r.Gauge("demo_depth", "Open tasks.").Set(7)
	r.Counter("demo_events_total", "Events seen.").Add(3)
	r.GaugeFunc("demo_lag", "Unstable records.", nil, func() float64 { return 2.5 })
	r.Histogram("demo_latency", "End-to-end latency.").Record(time.Millisecond)

	want := strings.Join([]string{
		`# HELP demo_aborts_total Aborts by cause.`,
		`# TYPE demo_aborts_total counter`,
		`demo_aborts_total{cause="conflict"} 2`,
		`demo_aborts_total{cause="revoke"} 1`,
		`# HELP demo_depth Open tasks.`,
		`# TYPE demo_depth gauge`,
		`demo_depth 7`,
		`# HELP demo_events_total Events seen.`,
		`# TYPE demo_events_total counter`,
		`demo_events_total 3`,
		`# HELP demo_lag Unstable records.`,
		`# TYPE demo_lag gauge`,
		`demo_lag 2.5`,
		`# HELP demo_latency End-to-end latency.`,
		`# TYPE demo_latency summary`,
		`demo_latency{quantile="0.5"} 0.001`,
		`demo_latency{quantile="0.9"} 0.001`,
		`demo_latency{quantile="0.99"} 0.001`,
		`demo_latency{quantile="1"} 0.001`,
		`demo_latency_sum 0.001`,
		`demo_latency_count 1`,
	}, "\n") + "\n"

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestPercentileNeverExceedsMax is the regression test for the top-bucket
// clamp: p99/p100 must return the true recorded maximum, not the
// power-of-two bucket upper bound above it.
func TestPercentileNeverExceedsMax(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(1 * time.Microsecond)
	}
	h.Record(1500 * time.Microsecond) // lands in the [1.048576ms, 2.097152ms) bucket

	if got := h.Percentile(1); got != h.Max() {
		t.Fatalf("p100 = %v, want exact max %v", got, h.Max())
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if got := h.Percentile(p); got > h.Max() {
			t.Fatalf("p%g = %v exceeds recorded max %v", p*100, got, h.Max())
		}
	}

	// A single observation reports itself exactly at every quantile.
	one := NewHistogram()
	one.Record(777 * time.Nanosecond)
	for _, p := range []float64{0, 0.5, 1} {
		if got := one.Percentile(p); got != 777*time.Nanosecond {
			t.Fatalf("single-value p%g = %v, want 777ns", p*100, got)
		}
	}
}
