package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Record("proc", "1:7", PhaseIngress, "input=0")
	tr.Record("proc", "1:7", PhaseExec, "")
	tr.Record("proc", "1:7", PhaseCommit, "")
	tr.Record("", "2:9", PhaseExternalize, "")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 4 {
		t.Fatalf("Count = %d, want 4", tr.Count())
	}
	if n := strings.Count(buf.String(), "\n"); n != 4 {
		t.Fatalf("trace has %d lines, want 4", n)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 {
		t.Fatalf("parsed %d spans, want 4", len(spans))
	}
	if spans[0].Phase != PhaseIngress || spans[0].Node != "proc" || spans[0].Event != "1:7" {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].TS < spans[i-1].TS {
			t.Fatalf("timestamps not monotone: %d then %d", spans[i-1].TS, spans[i].TS)
		}
	}
	if spans[3].Phase != PhaseExternalize || spans[3].Node != "" {
		t.Fatalf("span 3 = %+v", spans[3])
	}
}

func TestTracerNilIsInert(t *testing.T) {
	var tr *Tracer
	tr.Record("n", "1:1", PhaseExec, "") // must not panic
	if tr.Count() != 0 {
		t.Fatal("nil tracer reported spans")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.Record("n", "1:1", PhaseExec, "")
			}
		}()
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("concurrent writes interleaved badly: %v", err)
	}
	if len(spans) != 800 {
		t.Fatalf("parsed %d spans, want 800", len(spans))
	}
}
