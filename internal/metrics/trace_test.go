package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	before := time.Now().UnixNano()
	tr := NewTracerProc(&buf, "w1")
	tr.Record("proc", "1:7", PhaseIngress, "input=0")
	tr.Record("proc", "1:7", PhaseExec, "")
	tr.RecordTrace("proc", "1:7", 0xabcd, PhaseCommit, "")
	tr.Record("", "2:9", PhaseExternalize, "")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 4 {
		t.Fatalf("Count = %d, want 4 (clock header not counted)", tr.Count())
	}
	if n := strings.Count(buf.String(), "\n"); n != 5 {
		t.Fatalf("trace has %d lines, want 5 (clock header + 4 spans)", n)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 5 {
		t.Fatalf("parsed %d spans, want 5", len(spans))
	}
	if spans[0].Phase != PhaseClock || spans[0].Proc != "w1" ||
		!strings.Contains(spans[0].Info, "unix_ns=") {
		t.Fatalf("header = %+v", spans[0])
	}
	if spans[1].Phase != PhaseIngress || spans[1].Node != "proc" || spans[1].Event != "1:7" {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	if spans[3].Trace != "abcd" {
		t.Fatalf("span 3 trace = %q, want abcd", spans[3].Trace)
	}
	for i, s := range spans {
		if s.TS < before {
			t.Fatalf("span %d ts %d is not wall-clock (before %d)", i, s.TS, before)
		}
		if s.Proc != "w1" {
			t.Fatalf("span %d proc = %q", i, s.Proc)
		}
		if i > 0 && s.TS < spans[i-1].TS {
			t.Fatalf("timestamps not monotone: %d then %d", spans[i-1].TS, s.TS)
		}
	}
	if spans[4].Phase != PhaseExternalize || spans[4].Node != "" {
		t.Fatalf("span 4 = %+v", spans[4])
	}
}

// Legacy traces (relative timestamps, no clock header, no proc/trace
// fields) must still parse.
func TestReadSpansLegacyForm(t *testing.T) {
	legacy := `{"ts_ns":120,"node":"a","event":"1:0","phase":"ingress","info":"input=0"}
{"ts_ns":950,"node":"a","event":"1:0","phase":"commit"}
`
	spans, err := ReadSpans(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].TS != 120 || spans[1].Phase != PhaseCommit {
		t.Fatalf("legacy parse = %+v", spans)
	}
	if spans[0].Proc != "" || spans[0].Trace != "" {
		t.Fatalf("legacy span grew fields: %+v", spans[0])
	}
}

func TestTracerNilIsInert(t *testing.T) {
	var tr *Tracer
	tr.Record("n", "1:1", PhaseExec, "") // must not panic
	tr.RecordTrace("n", "1:1", 7, PhaseExec, "")
	tr.SetSampling(0.5)
	tr.SetAutoFlush(true)
	if tr.Keeps(7) {
		t.Fatal("nil tracer keeps spans")
	}
	if tr.Count() != 0 {
		t.Fatal("nil tracer reported spans")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSampling(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetSampling(0)
	tr.RecordTrace("n", "1:1", 42, PhaseExec, "")
	tr.Record("n", "", PhaseEpoch, "partition=0") // untraced: always kept
	if tr.Count() != 1 || tr.SampledOut() != 1 {
		t.Fatalf("count=%d sampled=%d, want 1/1", tr.Count(), tr.SampledOut())
	}
	if tr.Keeps(42) || !tr.Keeps(0) {
		t.Fatal("Keeps disagrees with sampling filter")
	}
	tr.SetSampling(1)
	if !tr.Keeps(42) {
		t.Fatal("rate 1 must keep everything")
	}
	tr.RecordTrace("n", "1:1", 42, PhaseExec, "")
	if tr.Count() != 2 {
		t.Fatalf("count=%d, want 2", tr.Count())
	}
	// A 50% threshold keeps lows and drops highs of the id space.
	tr.SetSampling(0.5)
	if !tr.Keeps(1) || tr.Keeps(^uint64(0)) {
		t.Fatal("rate 0.5 threshold misplaced")
	}
}

func TestTracerAutoFlush(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracerProc(&buf, "p")
	tr.SetAutoFlush(true)
	tr.RecordTrace("n", "1:1", 9, PhaseExec, "")
	// No Flush call: the header and the span must already be through.
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("autoflush wrote %d complete lines, want 2", n)
	}
}

func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.RecordTrace("n", "1:1", uint64(j+1), PhaseExec, "")
			}
		}()
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("concurrent writes interleaved badly: %v", err)
	}
	if len(spans) != 801 { // clock header + 800 spans
		t.Fatalf("parsed %d spans, want 801", len(spans))
	}
}

// TestTracingOffZeroAlloc pins the acceptance bar for disabled tracing:
// the guard pattern the engine uses at every call site — nil-check, then
// Keeps before building span info — must not allocate at all when the
// tracer is off, and neither must a nil histogram observation. (The HDR
// side of the hot path is covered by TestHDRRecordAllocFree.)
func TestTracingOffZeroAlloc(t *testing.T) {
	var tr *Tracer // tracing off: engine holds a nil tracer
	var h *HDR     // metrics off: nil histogram handles
	allocs := testing.AllocsPerRun(1000, func() {
		if tr != nil && tr.Keeps(42) {
			tr.RecordTrace("node", "1:2", 42, PhaseExec, "unreachable")
		}
		tr.Record("node", "1:2", PhaseCommit, "")
		h.Observe(123)
		h.Record(456)
	})
	if allocs != 0 {
		t.Fatalf("tracing-off hot path allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkTracingOffHotPath measures the same disabled-instrumentation
// path for the perf archive; b.ReportAllocs keeps the zero on record.
func BenchmarkTracingOffHotPath(b *testing.B) {
	var tr *Tracer
	var h *HDR
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr != nil && tr.Keeps(uint64(i)) {
			tr.RecordTrace("node", "1:2", uint64(i), PhaseExec, "unreachable")
		}
		h.Observe(int64(i))
	}
}
