package autolimit

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixture(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectV2(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, root, "sys/fs/cgroup/cpu.max", "250000 100000\n")
	writeFixture(t, root, "sys/fs/cgroup/memory.max", "1073741824\n")
	l := Detect(root)
	if l.CPUQuota != 2.5 {
		t.Errorf("CPUQuota = %v, want 2.5", l.CPUQuota)
	}
	if l.MemoryBytes != 1<<30 {
		t.Errorf("MemoryBytes = %d, want %d", l.MemoryBytes, 1<<30)
	}
}

func TestDetectV2Unlimited(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, root, "sys/fs/cgroup/cpu.max", "max 100000\n")
	writeFixture(t, root, "sys/fs/cgroup/memory.max", "max\n")
	l := Detect(root)
	if l.CPUQuota != 0 || l.MemoryBytes != 0 {
		t.Errorf("unlimited cgroup detected as %+v", l)
	}
}

func TestDetectV1(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, root, "sys/fs/cgroup/cpu/cpu.cfs_quota_us", "150000\n")
	writeFixture(t, root, "sys/fs/cgroup/cpu/cpu.cfs_period_us", "100000\n")
	writeFixture(t, root, "sys/fs/cgroup/memory/memory.limit_in_bytes", "536870912\n")
	l := Detect(root)
	if l.CPUQuota != 1.5 {
		t.Errorf("CPUQuota = %v, want 1.5", l.CPUQuota)
	}
	if l.MemoryBytes != 512<<20 {
		t.Errorf("MemoryBytes = %d, want %d", l.MemoryBytes, 512<<20)
	}
}

func TestDetectV1NoLimitSentinel(t *testing.T) {
	root := t.TempDir()
	// v1 reports "unlimited" as a huge page-rounded value.
	writeFixture(t, root, "sys/fs/cgroup/memory/memory.limit_in_bytes", "9223372036854771712\n")
	l := Detect(root)
	if l.MemoryBytes != 0 {
		t.Errorf("v1 no-limit sentinel detected as %d", l.MemoryBytes)
	}
}

func TestDetectMissing(t *testing.T) {
	l := Detect(t.TempDir())
	if l.CPUQuota != 0 || l.MemoryBytes != 0 {
		t.Errorf("empty root detected as %+v", l)
	}
}

func TestPlan(t *testing.T) {
	cases := []struct {
		name             string
		l                Limits
		numCPU           int
		envProcs, envMem bool
		wantProcs        int
		wantMem          int64
	}{
		{name: "quota below cores", l: Limits{CPUQuota: 2.5, MemoryBytes: 1 << 30}, numCPU: 8,
			wantProcs: 3, wantMem: (1 << 30) - (1<<30)/10},
		{name: "quota above cores leaves procs alone", l: Limits{CPUQuota: 16}, numCPU: 8},
		{name: "tiny quota floors at one", l: Limits{CPUQuota: 0.2}, numCPU: 8, wantProcs: 1},
		{name: "env overrides win", l: Limits{CPUQuota: 2, MemoryBytes: 1 << 30}, numCPU: 8,
			envProcs: true, envMem: true},
		{name: "no limits no plan", numCPU: 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := plan(tc.l, tc.numCPU, tc.envProcs, tc.envMem)
			if p.Procs != tc.wantProcs {
				t.Errorf("Procs = %d, want %d", p.Procs, tc.wantProcs)
			}
			if p.MemLimit != tc.wantMem {
				t.Errorf("MemLimit = %d, want %d", p.MemLimit, tc.wantMem)
			}
		})
	}
}
