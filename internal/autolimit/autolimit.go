// Package autolimit sizes the Go runtime to the container it runs in:
// GOMAXPROCS from the cgroup CPU quota and GOMEMLIMIT from the cgroup
// memory limit. Without it, a gateway granted 2 CPUs on a 64-core host
// runs 64 OS threads fighting over 2 cores' worth of quota (latency
// spikes every throttling period), and the GC lets the heap grow toward
// host memory until the cgroup OOM-killer fires — the opposite of the
// predictable tail latency the ingest path is built for.
//
// Both cgroup v2 (cpu.max, memory.max) and v1 (cpu.cfs_quota_us /
// cpu.cfs_period_us, memory.limit_in_bytes) layouts are understood.
// Explicit GOMAXPROCS / GOMEMLIMIT environment variables always win.
package autolimit

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
)

// Limits is what detection found; zero fields mean "no limit found".
type Limits struct {
	// CPUQuota is the fractional CPU allowance (e.g. 2.5 cores).
	CPUQuota float64
	// MemoryBytes is the memory limit in bytes.
	MemoryBytes int64
}

// memHeadroomDivisor reserves 1/10th of the cgroup memory limit as
// headroom below GOMEMLIMIT, leaving room for non-heap memory (stacks,
// mmapped log segments, kernel socket buffers) before the OOM-killer's
// threshold.
const memHeadroomDivisor = 10

// Detect reads the cgroup limits for the current process under root
// (normally "/"; tests point it at a fixture tree).
func Detect(root string) Limits {
	var l Limits
	// cgroup v2: one unified hierarchy at <root>/sys/fs/cgroup.
	base := filepath.Join(root, "sys", "fs", "cgroup")
	if quota, period, ok := parseCPUMax(readTrim(filepath.Join(base, "cpu.max"))); ok && period > 0 {
		l.CPUQuota = float64(quota) / float64(period)
	}
	if v, ok := parseBytes(readTrim(filepath.Join(base, "memory.max"))); ok {
		l.MemoryBytes = v
	}
	if l.CPUQuota > 0 && l.MemoryBytes > 0 {
		return l
	}
	// cgroup v1: per-controller hierarchies.
	if l.CPUQuota == 0 {
		quota, okQ := parseBytes(readTrim(filepath.Join(base, "cpu", "cpu.cfs_quota_us")))
		period, okP := parseBytes(readTrim(filepath.Join(base, "cpu", "cpu.cfs_period_us")))
		if okQ && okP && quota > 0 && period > 0 {
			l.CPUQuota = float64(quota) / float64(period)
		}
	}
	if l.MemoryBytes == 0 {
		if v, ok := parseBytes(readTrim(filepath.Join(base, "memory", "memory.limit_in_bytes"))); ok {
			// v1 reports "no limit" as a huge page-rounded number.
			if v < int64(1)<<60 {
				l.MemoryBytes = v
			}
		}
	}
	return l
}

func readTrim(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}

// parseCPUMax parses the v2 "quota period" form; "max" means unlimited.
func parseCPUMax(s string) (quota, period int64, ok bool) {
	fields := strings.Fields(s)
	if len(fields) != 2 || fields[0] == "max" {
		return 0, 0, false
	}
	q, err1 := strconv.ParseInt(fields[0], 10, 64)
	p, err2 := strconv.ParseInt(fields[1], 10, 64)
	if err1 != nil || err2 != nil || q <= 0 {
		return 0, 0, false
	}
	return q, p, true
}

func parseBytes(s string) (int64, bool) {
	if s == "" || s == "max" {
		return 0, false
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// Plan computes the runtime settings Apply would make, given detected
// limits and the current environment/host. Split out for testability.
type Plan struct {
	// Procs is the GOMAXPROCS to set; 0 means leave untouched.
	Procs int
	// MemLimit is the GOMEMLIMIT to set in bytes; 0 means leave untouched.
	MemLimit int64
}

func plan(l Limits, numCPU int, envProcs, envMem bool) Plan {
	var p Plan
	if !envProcs && l.CPUQuota > 0 {
		procs := int(l.CPUQuota + 0.5)
		if procs < 1 {
			procs = 1
		}
		// Only ever lower GOMAXPROCS: a quota above the core count gains
		// nothing from extra OS threads.
		if procs < numCPU {
			p.Procs = procs
		}
	}
	if !envMem && l.MemoryBytes > 0 {
		p.MemLimit = l.MemoryBytes - l.MemoryBytes/memHeadroomDivisor
	}
	return p
}

// Apply detects the container limits and applies them to the runtime,
// reporting what it did through logf (one line per applied setting,
// nothing when unlimited). Returns the detected limits.
func Apply(logf func(format string, args ...any)) Limits {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	l := Detect("/")
	_, envProcs := os.LookupEnv("GOMAXPROCS")
	_, envMem := os.LookupEnv("GOMEMLIMIT")
	p := plan(l, runtime.NumCPU(), envProcs, envMem)
	if p.Procs > 0 {
		runtime.GOMAXPROCS(p.Procs)
		logf("autolimit: GOMAXPROCS=%d (cgroup cpu quota %.2f, host has %d cores)",
			p.Procs, l.CPUQuota, runtime.NumCPU())
	}
	if p.MemLimit > 0 {
		debug.SetMemoryLimit(p.MemLimit)
		logf("autolimit: GOMEMLIMIT=%d bytes (cgroup limit %d, 10%% headroom)",
			p.MemLimit, l.MemoryBytes)
	}
	return l
}
