package baseline

import (
	"testing"
	"time"
)

func params() Params {
	return Params{
		Hops:              4,
		DiskLatency:       10 * time.Millisecond,
		CheckpointLatency: 25 * time.Millisecond,
		ReplicaRTT:        2 * time.Millisecond,
		DecisionsPerEvent: 3,
		Processing:        100 * time.Microsecond,
		Transport:         50 * time.Microsecond,
	}
}

func TestNonSpeculativeScalesWithHops(t *testing.T) {
	p := params()
	lat4 := NonSpeculative(p)
	p.Hops = 8
	lat8 := NonSpeculative(p)
	// Doubling hops roughly doubles the latency (logging dominates).
	if lat8 < lat4*19/10 || lat8 > lat4*21/10 {
		t.Fatalf("NonSpeculative: 4 hops %v, 8 hops %v — not ≈2×", lat4, lat8)
	}
}

func TestSpeculativeFlatInHops(t *testing.T) {
	p := params()
	lat4 := Speculative(p)
	p.Hops = 8
	lat8 := Speculative(p)
	// Only base pipeline cost grows; the single disk write dominates.
	growth := lat8 - lat4
	if growth >= p.DiskLatency {
		t.Fatalf("Speculative grew by %v over 4 extra hops — logging not overlapped", growth)
	}
}

func TestOrderingOfApproaches(t *testing.T) {
	p := params()
	spec := Speculative(p)
	nonspec := NonSpeculative(p)
	passive := PassiveStandby(p)
	active := ActiveStandby(p)
	upstream := UpstreamBackup(p)
	external := SpeculativeExternalized(p)

	if !(external < spec && spec < nonspec) {
		t.Fatalf("expected external < spec < nonspec: %v %v %v", external, spec, nonspec)
	}
	// Checkpoint-before-send is the most expensive precise approach here.
	if passive <= nonspec {
		t.Fatalf("passive standby (%v) should exceed log-and-wait (%v) for larger checkpoint writes", passive, nonspec)
	}
	if active <= upstream {
		t.Fatalf("active standby (%v) must exceed upstream backup (%v)", active, upstream)
	}
	if upstream != external {
		t.Fatalf("upstream backup (%v) and externalized speculation (%v) both pay only the base cost", upstream, external)
	}
}

func TestActiveStandbyScalesWithDecisions(t *testing.T) {
	p := params()
	lat3 := ActiveStandby(p)
	p.DecisionsPerEvent = 6
	lat6 := ActiveStandby(p)
	if lat6 <= lat3 {
		t.Fatalf("more decisions must cost more: %v vs %v", lat3, lat6)
	}
}

func TestEstimateDispatch(t *testing.T) {
	p := params()
	for _, a := range All() {
		lat, err := Estimate(a, p)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if lat <= 0 {
			t.Fatalf("%s: non-positive latency %v", a, lat)
		}
	}
	if _, err := Estimate("bogus", p); err == nil {
		t.Fatal("unknown approach accepted")
	}
}

func TestValidateDegenerate(t *testing.T) {
	lat := NonSpeculative(Params{DiskLatency: time.Millisecond})
	if lat != time.Millisecond {
		t.Fatalf("degenerate params: %v, want 1ms (1 hop)", lat)
	}
}
