// Package baseline provides the recovery-approach latency models the paper
// positions itself against (§5, Borealis/Flux): analytic per-event latency
// for passive standby, active standby, upstream backup, and the
// non-speculative log-and-wait baseline, alongside the speculative model.
//
// These are first-order models — each approach is reduced to what it must
// synchronously wait for per hop before an output may be externalized with
// precise-recovery guarantees:
//
//	non-speculative logging   wait for the local decision-log write
//	passive standby           wait for a full state checkpoint write
//	active standby            wait for a replica round trip per decision
//	upstream backup           wait for nothing (but precise only for
//	                          deterministic operators)
//	speculative (this paper)  one log write, overlapped across all hops
//
// The experiment harness uses them for the related-work comparison table;
// the measured speculative/non-speculative numbers come from the real
// engine (internal/experiments).
package baseline

import (
	"fmt"
	"time"
)

// Params describe a linear pipeline and its environment.
type Params struct {
	// Hops is the number of operators that take loggable decisions.
	Hops int
	// DiskLatency is the stable-storage write time for a decision batch.
	DiskLatency time.Duration
	// CheckpointLatency is the stable write time for a full state
	// snapshot (passive standby pays this per output batch).
	CheckpointLatency time.Duration
	// ReplicaRTT is the network round trip to an active-standby replica.
	ReplicaRTT time.Duration
	// DecisionsPerEvent is how many non-deterministic decisions each hop
	// takes per event (active standby synchronizes each).
	DecisionsPerEvent int
	// Processing is the pure computation time per hop.
	Processing time.Duration
	// Transport is the per-hop message delay.
	Transport time.Duration
}

// validate normalizes degenerate parameters.
func (p Params) validate() Params {
	if p.Hops < 1 {
		p.Hops = 1
	}
	if p.DecisionsPerEvent < 1 {
		p.DecisionsPerEvent = 1
	}
	return p
}

// base is the inescapable pipeline cost: processing and transport.
func (p Params) base() time.Duration {
	return time.Duration(p.Hops) * (p.Processing + p.Transport)
}

// NonSpeculative models the log-and-wait baseline: every hop blocks its
// outputs on its own stable log write, so the writes serialize along the
// chain (paper §2.4).
func NonSpeculative(p Params) time.Duration {
	p = p.validate()
	return p.base() + time.Duration(p.Hops)*p.DiskLatency
}

// Speculative models the paper's approach: outputs travel speculatively
// and all hops' log writes overlap, so the pipeline pays approximately a
// single disk write regardless of length.
func Speculative(p Params) time.Duration {
	p = p.validate()
	return p.base() + p.DiskLatency
}

// SpeculativeExternalized models the paper's closing scenario (§4): the
// environment accepts speculative outputs, so logging leaves the critical
// path entirely.
func SpeculativeExternalized(p Params) time.Duration {
	p = p.validate()
	return p.base()
}

// PassiveStandby models Borealis-style passive standby with precise
// recovery: an operator may only forward checkpointed tuples, so every hop
// pays a checkpoint write before sending (Hwang et al., ICDE'05).
func PassiveStandby(p Params) time.Duration {
	p = p.validate()
	return p.base() + time.Duration(p.Hops)*p.CheckpointLatency
}

// ActiveStandby models process-pair replication with precise recovery:
// each non-deterministic decision is shipped to the secondary and
// acknowledged before the event is sent downstream.
func ActiveStandby(p Params) time.Duration {
	p = p.validate()
	return p.base() + time.Duration(p.Hops*p.DecisionsPerEvent)*p.ReplicaRTT
}

// UpstreamBackup models Borealis upstream backup: upstream nodes buffer
// outputs, nothing is synchronously persisted. It is only *precise* for
// repeatable/deterministic graphs — for non-deterministic operators it
// provides gap-free but not duplicate-identical recovery.
func UpstreamBackup(p Params) time.Duration {
	p = p.validate()
	return p.base()
}

// Approach names a modelled recovery strategy.
type Approach string

// Modelled approaches.
const (
	ApproachNonSpeculative Approach = "non-speculative-logging"
	ApproachSpeculative    Approach = "speculative (this paper)"
	ApproachSpecExternal   Approach = "speculative+external-filter"
	ApproachPassive        Approach = "passive-standby"
	ApproachActive         Approach = "active-standby"
	ApproachUpstream       Approach = "upstream-backup (not precise for ND)"
)

// Estimate returns the modelled per-event latency for an approach.
func Estimate(a Approach, p Params) (time.Duration, error) {
	switch a {
	case ApproachNonSpeculative:
		return NonSpeculative(p), nil
	case ApproachSpeculative:
		return Speculative(p), nil
	case ApproachSpecExternal:
		return SpeculativeExternalized(p), nil
	case ApproachPassive:
		return PassiveStandby(p), nil
	case ApproachActive:
		return ActiveStandby(p), nil
	case ApproachUpstream:
		return UpstreamBackup(p), nil
	default:
		return 0, fmt.Errorf("baseline: unknown approach %q", a)
	}
}

// All lists the modelled approaches in presentation order.
func All() []Approach {
	return []Approach{
		ApproachNonSpeculative,
		ApproachPassive,
		ApproachActive,
		ApproachUpstream,
		ApproachSpeculative,
		ApproachSpecExternal,
	}
}
