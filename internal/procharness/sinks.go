package procharness

import (
	"fmt"
	"sync"
	"time"
)

// SinkEvent is one externalized sink output with the wall time the
// harness observed its SINK line. Wall anchoring is what makes the
// timeline usable for recovery measurement: event timestamps inside the
// engine are virtual, so before/during/after a fault can only be told
// apart by when outputs actually appeared.
type SinkEvent struct {
	At     time.Time
	Worker string
	ID     string
}

// Sinks aggregates "SINK <name> <id>" lines across worker processes:
// identity set with multiplicity (a finalized event printed twice means
// duplicate suppression leaked), per-worker counts (to pick a fault
// victim), and the wall-anchored timeline.
type Sinks struct {
	mu       sync.Mutex
	counts   map[string]int
	byWorker map[string]map[string]int // id → worker → prints
	per      map[string]int
	timeline []SinkEvent
}

// NewSinks returns an empty recorder.
func NewSinks() *Sinks {
	return &Sinks{
		counts:   make(map[string]int),
		byWorker: make(map[string]map[string]int),
		per:      make(map[string]int),
	}
}

// Record notes one SINK line from worker.
func (s *Sinks) Record(worker, id string) {
	now := time.Now()
	s.mu.Lock()
	s.counts[id]++
	if s.byWorker[id] == nil {
		s.byWorker[id] = make(map[string]int)
	}
	s.byWorker[id][worker]++
	s.per[worker]++
	s.timeline = append(s.timeline, SinkEvent{At: now, Worker: worker, ID: id})
	s.mu.Unlock()
}

// Distinct reports the number of distinct externalized identities.
func (s *Sinks) Distinct() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.counts)
}

// Count reports how many SINK lines worker has printed.
func (s *Sinks) Count(worker string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.per[worker]
}

// Busiest returns a worker that has printed at least min SINK lines, or
// "" when none has yet.
func (s *Sinks) Busiest(min int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for w, n := range s.per {
		if n >= min {
			return w
		}
	}
	return ""
}

// WaitBusiest polls until some worker has printed min SINK lines —
// the standard fault trigger "kill whoever holds the sink partition
// once the run is under way".
func (s *Sinks) WaitBusiest(min int, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		if w := s.Busiest(min); w != "" {
			return w, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("procharness: no worker produced %d sink events within %v", min, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WaitDistinct polls until n distinct identities have externalized —
// the completion criterion for open-ended (ingest-fed) runs, whose
// coordinator never reports done.
func (s *Sinks) WaitDistinct(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if got := s.Distinct(); got >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("procharness: sinks externalized %d distinct events, want %d", s.Distinct(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// IDs snapshots the distinct identity set.
func (s *Sinks) IDs() map[string]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]bool, len(s.counts))
	for id := range s.counts {
		out[id] = true
	}
	return out
}

// Snapshot returns the identity set plus the number of duplicate prints
// (total prints beyond the first per identity).
func (s *Sinks) Snapshot() (ids map[string]bool, dupPrints int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids = make(map[string]bool, len(s.counts))
	for id, n := range s.counts {
		ids[id] = true
		if n > 1 {
			dupPrints += n - 1
		}
	}
	return ids, dupPrints
}

// DupBreakdown splits duplicate prints by locality. sameWorker counts
// repeats by a single process — always a suppression leak. crossWorker
// counts prints of one identity spanning processes — when a sink-hosting
// worker is killed, the reassigned partition legitimately re-externalizes
// its post-checkpoint tail on the survivor (at-least-once at the output
// boundary; the identity set stays exactly-once), so callers only treat
// these as violations when no process-killing fault was injected.
func (s *Sinks) DupBreakdown() (sameWorker, crossWorker int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, per := range s.byWorker {
		total, same := 0, 0
		for _, n := range per {
			total += n
			if n > 1 {
				same += n - 1
			}
		}
		if total > 1 {
			sameWorker += same
			crossWorker += (total - 1) - same
		}
	}
	return sameWorker, crossWorker
}

// Timeline copies the wall-anchored sink event sequence in arrival
// order.
func (s *Sinks) Timeline() []SinkEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SinkEvent, len(s.timeline))
	copy(out, s.timeline)
	return out
}
