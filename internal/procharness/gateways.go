package procharness

import (
	"fmt"
	"sync"
	"time"
)

// GatewayReg is one ingest-stream registration: which worker's gateway
// currently accepts the stream, where, and a per-stream generation
// counter. Workers log the registration both at initial assignment and
// after a failover reassignment, so a bumped generation is the
// producers' signal that the stream moved and resends should target the
// new address.
type GatewayReg struct {
	Worker string
	Addr   string
	Gen    int
}

// Gateways tracks ingest-stream registrations scraped from worker
// output.
type Gateways struct {
	mu      sync.Mutex
	streams map[string]GatewayReg
}

func (g *Gateways) set(stream, worker, addr string) {
	g.mu.Lock()
	if g.streams == nil {
		g.streams = make(map[string]GatewayReg)
	}
	reg := g.streams[stream]
	g.streams[stream] = GatewayReg{Worker: worker, Addr: addr, Gen: reg.Gen + 1}
	g.mu.Unlock()
}

// Get reports the current registration of stream; Gen is 0 and ok false
// while no worker has registered it.
func (g *Gateways) Get(stream string) (GatewayReg, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	reg, ok := g.streams[stream]
	return reg, ok
}

// Wait polls until stream is registered by some worker.
func (g *Gateways) Wait(stream string, timeout time.Duration) (GatewayReg, error) {
	deadline := time.Now().Add(timeout)
	for {
		if reg, ok := g.Get(stream); ok {
			return reg, nil
		}
		if time.Now().After(deadline) {
			return GatewayReg{}, fmt.Errorf("procharness: no worker registered ingest stream %q within %v", stream, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
