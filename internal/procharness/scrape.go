package procharness

import (
	"bufio"
	"os/exec"
	"strings"
)

// scan wires a process's combined stdout/stderr through sift (the
// harness's stdout contracts) and then the caller's OnLine hook. It
// must run before cmd.Start.
func (c *Cluster) scan(cmd *exec.Cmd, proc string, onLine func(proc, line string)) error {
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = cmd.Stdout
	go func() {
		sc := bufio.NewScanner(out)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			c.sift(proc, line)
			if onLine != nil {
				onLine(proc, line)
			}
		}
	}()
	return nil
}

const (
	coordPrefix   = "coordinator on "
	debugPrefix   = "debug server on http://"
	gatewayMarker = `ingest source "`
	gatewayInfix  = `" accepting on `
)

// sift applies the stdout contracts listed in the package comment.
func (c *Cluster) sift(proc, line string) {
	if rest, ok := strings.CutPrefix(line, coordPrefix); ok {
		if i := strings.IndexByte(rest, ','); i >= 0 {
			select {
			case c.coordAddrCh <- rest[:i]:
			default:
			}
		}
		return
	}
	if rest, ok := strings.CutPrefix(line, debugPrefix); ok {
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			rest = rest[:i]
		}
		c.mu.Lock()
		c.debugAddrs[proc] = rest
		c.mu.Unlock()
		return
	}
	if fields := strings.Fields(line); len(fields) == 3 && fields[0] == "SINK" {
		c.Sinks.Record(proc, fields[2])
		return
	}
	// `[wN] partition 0: ingest source "src" accepting on ADDR`
	if i := strings.Index(line, gatewayMarker); i >= 0 {
		rest := line[i+len(gatewayMarker):]
		if j := strings.Index(rest, gatewayInfix); j >= 0 {
			stream := rest[:j]
			addr := strings.TrimSpace(rest[j+len(gatewayInfix):])
			c.Gateways.set(stream, proc, addr)
		}
	}
}
