// Package procharness orchestrates real multi-process streammine
// clusters — one coordinator plus N workers as separate OS processes
// over a shared state directory — for the e2e failover tests and the
// fault-recovery campaign runner (internal/campaign). It owns the
// process lifecycle (spawn, scrape, signal, reap) and the stdout
// contracts the binaries expose:
//
//	coordinator on ADDR, waiting for workers     control-plane address
//	debug server on http://ADDR (...)            per-process debug address
//	SINK <name> <id>                             one externalized event
//	ingest source "<stream>" accepting on ADDR   gateway registration
//
// The harness deliberately returns errors instead of taking *testing.T:
// tests wrap failures in t.Fatal, while the campaign runner converts
// them into per-cell verdicts without aborting the whole campaign.
package procharness

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"
)

// BuildBinary compiles pkg (a package path resolvable from dir, e.g.
// "." inside cmd/streammine or "streammine/cmd/streammine" anywhere in
// the module) into dir and returns the binary path.
func BuildBinary(dir, pkg string) (string, error) {
	bin := filepath.Join(dir, "streammine")
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build %s: %w\n%s", pkg, err, out)
	}
	return bin, nil
}

// Options configures one cluster run.
type Options struct {
	// Bin is the streammine binary (required; see BuildBinary).
	Bin string
	// Topology is the topology JSON content; the harness writes it into
	// Dir for the coordinator (required).
	Topology string
	// Dir is the scratch directory for the topology file and the shared
	// worker state directory (required; typically t.TempDir() or a
	// campaign cell directory).
	Dir string
	// Workers is the number of worker processes (default 2).
	Workers int
	// HBTimeout is the cluster heartbeat timeout (default 500ms — fast
	// failure detection keeps drills short).
	HBTimeout time.Duration
	// CoordArgs are appended to the coordinator invocation (engine-wide
	// overrides like -batch ride the ASSIGN payload to the workers).
	CoordArgs []string
	// WorkerArgs are appended to every worker invocation (e.g. -chaos
	// -debug-addr 127.0.0.1:0, or the ingest gateway flags).
	WorkerArgs []string
	// TraceDir, when set, gives every process a -trace file
	// <TraceDir>/<proc>.jsonl for post-run lineage analysis.
	TraceDir string
	// OnLine, when set, observes every stdout/stderr line of every
	// process (after the harness's own scraping). It runs on the
	// process's scan goroutine and must not block.
	OnLine func(proc, line string)
}

// Cluster is a running coordinator+workers process group.
type Cluster struct {
	// Sinks aggregates every worker's SINK lines.
	Sinks *Sinks
	// Gateways tracks which worker's ingest gateway currently accepts
	// each stream.
	Gateways *Gateways
	// CoordAddr is the coordinator's control-plane address.
	CoordAddr string

	coord   *exec.Cmd
	workers map[string]*exec.Cmd

	mu         sync.Mutex
	debugAddrs map[string]string
	closed     bool

	coordAddrCh chan string
}

// Start writes the topology, spawns the coordinator, waits for its
// address, and spawns the workers (named w1..wN). On error everything
// already spawned is killed.
func Start(o Options) (*Cluster, error) {
	if o.Bin == "" || o.Topology == "" || o.Dir == "" {
		return nil, errors.New("procharness: Bin, Topology and Dir are required")
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.HBTimeout <= 0 {
		o.HBTimeout = 500 * time.Millisecond
	}
	topoPath := filepath.Join(o.Dir, "topo.json")
	if err := os.WriteFile(topoPath, []byte(o.Topology), 0o644); err != nil {
		return nil, fmt.Errorf("procharness: write topology: %w", err)
	}
	traceArgs := func(proc string) []string {
		if o.TraceDir == "" {
			return nil
		}
		return []string{"-trace", filepath.Join(o.TraceDir, proc+".jsonl")}
	}

	c := &Cluster{
		Sinks:       NewSinks(),
		Gateways:    &Gateways{},
		workers:     make(map[string]*exec.Cmd, o.Workers),
		debugAddrs:  make(map[string]string),
		coordAddrCh: make(chan string, 1),
	}

	coordArgs := []string{"-coordinator", "127.0.0.1:0", "-topology", topoPath,
		"-hb-timeout", o.HBTimeout.String()}
	coordArgs = append(coordArgs, o.CoordArgs...)
	coordArgs = append(coordArgs, traceArgs("coordinator")...)
	c.coord = exec.Command(o.Bin, coordArgs...)
	if err := c.scan(c.coord, "coordinator", o.OnLine); err != nil {
		return nil, err
	}
	if err := c.coord.Start(); err != nil {
		return nil, fmt.Errorf("procharness: start coordinator: %w", err)
	}

	select {
	case c.CoordAddr = <-c.coordAddrCh:
	case <-time.After(10 * time.Second):
		c.Close()
		return nil, errors.New("procharness: coordinator never reported its address")
	}

	stateDir := filepath.Join(o.Dir, "state")
	for i := 0; i < o.Workers; i++ {
		name := fmt.Sprintf("w%d", i+1)
		args := []string{"-worker", "-join", c.CoordAddr, "-name", name,
			"-state-dir", stateDir, "-hb-timeout", o.HBTimeout.String()}
		args = append(args, o.WorkerArgs...)
		args = append(args, traceArgs(name)...)
		wk := exec.Command(o.Bin, args...)
		if err := c.scan(wk, name, o.OnLine); err != nil {
			c.Close()
			return nil, err
		}
		if err := wk.Start(); err != nil {
			c.Close()
			return nil, fmt.Errorf("procharness: start %s: %w", name, err)
		}
		c.workers[name] = wk
	}
	return c, nil
}

// WorkerNames lists the worker process names (w1..wN).
func (c *Cluster) WorkerNames() []string {
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	return names
}

// KillWorker SIGKILLs the named worker — the paper's fail-stop fault.
func (c *Cluster) KillWorker(name string) error {
	wk, ok := c.workers[name]
	if !ok {
		return fmt.Errorf("procharness: no worker %q", name)
	}
	return wk.Process.Kill()
}

// SignalWorker delivers sig (e.g. SIGSTOP/SIGCONT for a pause fault) to
// the named worker.
func (c *Cluster) SignalWorker(name string, sig os.Signal) error {
	wk, ok := c.workers[name]
	if !ok {
		return fmt.Errorf("procharness: no worker %q", name)
	}
	return wk.Process.Signal(sig)
}

// SignalCoord delivers sig to the coordinator (SIGSTOP/SIGCONT for the
// coordinator-pause fault).
func (c *Cluster) SignalCoord(sig os.Signal) error {
	return c.coord.Process.Signal(sig)
}

// DebugAddr reports the scraped debug-server address of proc
// ("coordinator" or a worker name); ok is false until the process
// printed its registration line.
func (c *Cluster) DebugAddr(proc string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	addr, ok := c.debugAddrs[proc]
	return addr, ok
}

// WaitDebugAddr polls DebugAddr until the process reports it or the
// timeout elapses.
func (c *Cluster) WaitDebugAddr(proc string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		if addr, ok := c.DebugAddr(proc); ok {
			return addr, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("procharness: %s never reported a debug address", proc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// WaitDone waits for the coordinator to report the run complete (exit
// 0), then reaps the workers, giving each a grace period to flush its
// final SINK lines before being killed. It is the terminal step for
// closed-ended (synthetic-source) runs; ingest-fed runs never complete
// and use the Sinks wait helpers plus Close instead.
func (c *Cluster) WaitDone(timeout time.Duration) error {
	waitErr := make(chan error, 1)
	go func() { waitErr <- c.coord.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			return fmt.Errorf("procharness: coordinator exited: %w", err)
		}
	case <-time.After(timeout):
		return errors.New("procharness: cluster run did not complete")
	}
	for _, wk := range c.workers {
		done := make(chan struct{})
		go func() { _ = wk.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = wk.Process.Kill()
			<-done
		}
	}
	return nil
}

// Close kills every process in the cluster. It is idempotent and safe
// after WaitDone (killing a reaped process is a no-op error we ignore).
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.coord != nil && c.coord.Process != nil {
		_ = c.coord.Process.Kill()
	}
	for _, wk := range c.workers {
		if wk.Process != nil {
			_ = wk.Process.Kill()
		}
	}
}
