package procharness

import (
	"testing"
	"time"
)

func TestSinksCountsAndSnapshot(t *testing.T) {
	s := NewSinks()
	s.Record("w1", "a")
	s.Record("w1", "b")
	s.Record("w2", "c")
	if s.Distinct() != 3 || s.Count("w1") != 2 {
		t.Fatalf("distinct=%d w1=%d", s.Distinct(), s.Count("w1"))
	}
	ids, dups := s.Snapshot()
	if len(ids) != 3 || dups != 0 {
		t.Fatalf("ids=%d dups=%d", len(ids), dups)
	}
	if got := len(s.Timeline()); got != 3 {
		t.Fatalf("timeline length = %d", got)
	}
}

func TestSinksDupBreakdown(t *testing.T) {
	s := NewSinks()
	// "a": printed once on each worker — the cross-incarnation replay
	// signature after a sink-host kill.
	s.Record("w1", "a")
	s.Record("w2", "a")
	// "b": printed twice by the same worker — a suppression leak.
	s.Record("w1", "b")
	s.Record("w1", "b")
	// "c": clean.
	s.Record("w2", "c")
	same, cross := s.DupBreakdown()
	if same != 1 || cross != 1 {
		t.Fatalf("same=%d cross=%d, want 1/1", same, cross)
	}
	if _, dups := s.Snapshot(); dups != 2 {
		t.Fatalf("total dups = %d, want 2", dups)
	}
}

func TestSinksWaitHelpers(t *testing.T) {
	s := NewSinks()
	go func() {
		for _, id := range []string{"a", "b", "c"} {
			s.Record("w1", id)
		}
	}()
	if err := s.WaitDistinct(3, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	w, err := s.WaitBusiest(3, 2*time.Second)
	if err != nil || w != "w1" {
		t.Fatalf("busiest = %q, %v", w, err)
	}
	if err := s.WaitDistinct(10, 30*time.Millisecond); err == nil {
		t.Fatal("WaitDistinct should time out")
	}
}

func TestGateways(t *testing.T) {
	g := &Gateways{}
	g.set("src", "w1", "127.0.0.1:9")
	reg, ok := g.Get("src")
	if !ok || reg.Worker != "w1" || reg.Gen != 1 {
		t.Fatalf("reg = %+v ok=%v", reg, ok)
	}
	// Re-registration (failover) bumps the generation.
	g.set("src", "w2", "127.0.0.1:10")
	reg, _ = g.Get("src")
	if reg.Worker != "w2" || reg.Gen != 2 {
		t.Fatalf("after failover reg = %+v", reg)
	}
	if _, err := g.Wait("src", time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Wait("nope", 30*time.Millisecond); err == nil {
		t.Fatal("Wait on unknown stream should time out")
	}
}
