package recovery

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streammine/internal/metrics"
)

// ms converts a test-scale millisecond offset into nanoseconds. All
// timeline tests anchor at 1s so zero-valued StartNs stays meaningful.
func ms(v int64) int64 { return 1_000_000_000 + v*1_000_000 }

// beginIncident opens an incident with a 40ms detect and 5ms decide
// window for one moved partition.
func beginIncident(a *Aggregator, epoch int) {
	a.Begin(epoch, "w2", []int{1},
		Span{Phase: PhaseDetect, Partition: -1, Epoch: epoch, StartNs: ms(0), EndNs: ms(40)},
		Span{Phase: PhaseDecide, Partition: -1, Epoch: epoch, StartNs: ms(40), EndNs: ms(45)})
}

// workerSpans is a full post-decide phase chain for partition 1: build
// restore, refill, durable restore, replay.
func workerSpans(epoch int) []Span {
	return []Span{
		{Phase: PhaseRestore, Partition: 1, Epoch: epoch, Worker: "w1", StartNs: ms(45), EndNs: ms(50)},
		{Phase: PhaseRefill, Partition: 1, Epoch: epoch, Worker: "w1", StartNs: ms(50), EndNs: ms(55), Records: 2},
		{Phase: PhaseRestore, Partition: 1, Epoch: epoch, Worker: "w1", StartNs: ms(55), EndNs: ms(75), Bytes: 4096, Records: 120},
		{Phase: PhaseReplay, Partition: 1, Epoch: epoch, Worker: "w1", StartNs: ms(75), EndNs: ms(95), Events: 200, Drops: 7},
	}
}

func TestAggregatorStitchesIncident(t *testing.T) {
	a := NewAggregator()
	beginIncident(a, 2)

	// First heartbeat: restore still open. Later cumulative reports
	// replace it by key with the closed copy.
	a.Fold([]Span{{Phase: PhaseRestore, Partition: 1, Epoch: 2, Worker: "w1", StartNs: ms(45)}})
	a.Fold(workerSpans(2))

	rep := a.Report()
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1", len(rep.Incidents))
	}
	inc := rep.Incidents[0]
	if inc.Complete {
		t.Fatalf("incident complete before catch-up closed")
	}

	a.Fold([]Span{{Phase: PhaseCatchup, Partition: 1, Epoch: 2, StartNs: ms(95), EndNs: ms(145), Events: 900}})
	inc = a.Report().Incidents[0]
	if !inc.Complete {
		t.Fatalf("incident not complete after catch-up on every moved partition")
	}
	if inc.Victim != "w2" || inc.Epoch != 2 {
		t.Errorf("victim/epoch = %q/%d, want w2/2", inc.Victim, inc.Epoch)
	}
	if inc.DetectedNs != ms(40) {
		t.Errorf("DetectedNs = %d, want %d", inc.DetectedNs, ms(40))
	}
	if inc.TotalMs != 145 {
		t.Errorf("TotalMs = %v, want 145", inc.TotalMs)
	}
	want := map[string]float64{
		PhaseDetect: 40, PhaseDecide: 5, PhaseRestore: 25,
		PhaseRefill: 5, PhaseReplay: 20, PhaseCatchup: 50,
	}
	for ph, w := range want {
		if got := inc.PhaseMs[ph]; got != w {
			t.Errorf("PhaseMs[%s] = %v, want %v", ph, got, w)
		}
	}
	// Disjoint phases must sum to the end-to-end total.
	var sum float64
	for _, v := range inc.PhaseMs {
		sum += v
	}
	if sum != inc.TotalMs {
		t.Errorf("phase sum %v != TotalMs %v", sum, inc.TotalMs)
	}
	if inc.DominantPhase != PhaseCatchup {
		t.Errorf("DominantPhase = %q, want catchup", inc.DominantPhase)
	}
	if inc.RestoreBytes != 4096 || inc.LogRecords != 120 {
		t.Errorf("restore attribution = %d bytes / %d records, want 4096/120", inc.RestoreBytes, inc.LogRecords)
	}
	if inc.ReplayEvents != 200 || inc.ReplayDrops != 7 {
		t.Errorf("replay attribution = %d events / %d drops, want 200/7", inc.ReplayEvents, inc.ReplayDrops)
	}
	if inc.ReplayEventsPerSec != 10000 { // 200 events over 20ms
		t.Errorf("ReplayEventsPerSec = %v, want 10000", inc.ReplayEventsPerSec)
	}
	// Spans come back sorted by start time.
	for i := 1; i < len(inc.Spans); i++ {
		if inc.Spans[i].StartNs < inc.Spans[i-1].StartNs {
			t.Errorf("spans not sorted by StartNs at %d", i)
		}
	}
}

func TestPhaseUnionCountsOverlapOnce(t *testing.T) {
	a := NewAggregator()
	a.Begin(3, "w1", []int{0, 1},
		Span{Phase: PhaseDetect, Partition: -1, Epoch: 3, StartNs: ms(0), EndNs: ms(10)},
		Span{Phase: PhaseDecide, Partition: -1, Epoch: 3, StartNs: ms(10), EndNs: ms(12)})
	// Two partitions restoring in parallel: 12..40 and 20..50 overlap,
	// union is 12..50 = 38ms, not 58ms.
	a.Fold([]Span{
		{Phase: PhaseRestore, Partition: 0, Epoch: 3, Worker: "w2", StartNs: ms(12), EndNs: ms(40)},
		{Phase: PhaseRestore, Partition: 1, Epoch: 3, Worker: "w3", StartNs: ms(20), EndNs: ms(50)},
	})
	inc := a.Report().Incidents[0]
	if got := inc.PhaseMs[PhaseRestore]; got != 38 {
		t.Errorf("restore union = %v ms, want 38", got)
	}
}

func TestPhaseMsWithinClipsToWindow(t *testing.T) {
	a := NewAggregator()
	beginIncident(a, 2)
	a.Fold(workerSpans(2))
	a.Fold([]Span{{Phase: PhaseCatchup, Partition: 1, Epoch: 2, StartNs: ms(95), EndNs: ms(145)}})
	inc := a.Report().Incidents[0]

	// Window [20, 120]: detect clipped to 20ms of its 40, catchup to 25
	// of its 50; fully-inside phases unchanged; nothing outside counted.
	got := inc.PhaseMsWithin(ms(20), ms(120))
	want := map[string]float64{
		PhaseDetect: 20, PhaseDecide: 5, PhaseRestore: 25,
		PhaseRefill: 5, PhaseReplay: 20, PhaseCatchup: 25,
	}
	for ph, w := range want {
		if got[ph] != w {
			t.Errorf("clipped PhaseMs[%s] = %v, want %v", ph, got[ph], w)
		}
	}
	if empty := inc.PhaseMsWithin(ms(200), ms(300)); len(empty) != 0 {
		t.Errorf("window past the incident should clip everything, got %v", empty)
	}
}

func TestFoldDropsStaleAndUnknownSpans(t *testing.T) {
	a := NewAggregator()
	beginIncident(a, 2)
	a.Fold([]Span{
		// Pre-incident span retagged to the new epoch by an epoch
		// refresh of a surviving partition: must not join the incident.
		{Phase: PhaseRestore, Partition: 0, Epoch: 2, Worker: "w1", StartNs: ms(-500), EndNs: ms(-400)},
		// Span for an epoch with no open incident: ignored.
		{Phase: PhaseRestore, Partition: 1, Epoch: 99, Worker: "w1", StartNs: ms(45), EndNs: ms(50)},
	})
	inc := a.Report().Incidents[0]
	for _, s := range inc.Spans {
		if s.StartNs < ms(0) {
			t.Errorf("stale pre-incident span folded in: %+v", s)
		}
	}
	if len(inc.Spans) != 2 { // detect + decide only
		t.Errorf("spans = %d, want 2 (detect+decide)", len(inc.Spans))
	}
}

func TestLastAndEviction(t *testing.T) {
	a := NewAggregator()
	if a.Last() != nil {
		t.Fatalf("Last() on empty aggregator should be nil")
	}
	for e := 1; e <= maxIncidents+2; e++ {
		beginIncident(a, e)
	}
	if got := a.IncidentsTotal(); got != maxIncidents+2 {
		t.Errorf("IncidentsTotal = %d, want %d", got, maxIncidents+2)
	}
	rep := a.Report()
	if len(rep.Incidents) != maxIncidents {
		t.Errorf("retained incidents = %d, want %d", len(rep.Incidents), maxIncidents)
	}
	if rep.Incidents[0].Epoch != 3 {
		t.Errorf("oldest retained epoch = %d, want 3 (1 and 2 evicted)", rep.Incidents[0].Epoch)
	}
	if s := a.Last(); s == nil || s.Epoch != maxIncidents+2 {
		t.Errorf("Last() = %+v, want epoch %d", s, maxIncidents+2)
	}
}

func TestMetricsRegisteredAndDocumented(t *testing.T) {
	a := NewAggregator()
	reg := metrics.NewRegistry()
	RegisterMetrics(a, reg)

	beginIncident(a, 2)
	a.Fold(workerSpans(2))
	a.Fold([]Span{{Phase: PhaseCatchup, Partition: 1, Epoch: 2, StartNs: ms(95), EndNs: ms(145)}})

	checks := map[string]float64{
		"recovery_incidents_total":          1,
		"recovery_incidents_complete_total": 1,
		"recovery_restore_bytes_total":      4096,
		"recovery_log_records_total":        120,
		"recovery_replay_events_total":      200,
		"recovery_replay_dedup_drops_total": 7,
		"recovery_last_total_ms":            145,
	}
	for name, want := range checks {
		if v, ok := reg.Value(name, nil); !ok || v != want {
			t.Errorf("%s = %v ok=%v, want %v", name, v, ok, want)
		}
	}

	// Every recovery_* series must appear in the docs/OBSERVABILITY.md
	// inventory table.
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read metric inventory doc: %v", err)
	}
	seen := make(map[string]bool)
	for _, p := range reg.Snapshot() {
		if !strings.HasPrefix(p.Name, "recovery_") || seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		if !strings.Contains(string(doc), p.Name) {
			t.Errorf("series %s not documented in docs/OBSERVABILITY.md", p.Name)
		}
	}
	if len(seen) < 9 {
		t.Errorf("only %d recovery_* series registered, want at least 9", len(seen))
	}
}
