// Package recovery is the recovery anatomy profiler: it stitches the
// per-phase spans emitted during a failure recovery — detection,
// coordinator decision, per-partition restore, credit-window refill,
// replay, and catch-up — into per-incident timelines with attribution
// (checkpoint bytes, decision-log records, replay events/sec, dedup
// drops). The coordinator owns an Aggregator; workers report their
// local spans piggybacked on STATUS heartbeats; every phase transition
// is mirrored into the flight recorder so a crash mid-takeover still
// leaves a parseable trail. Reports are served at /debug/recovery and
// summarized into /debug/health.
package recovery

import (
	"sort"
	"sync"

	"streammine/internal/flightrec"
)

// Phase names, in canonical timeline order. Per partition the phases
// are disjoint by construction: detect and decide happen on the
// coordinator; restore covers both the partition rebuild (ASSIGN →
// engine built) and the durable load (checkpoint + decision-log scan),
// with the refill (bridge re-attach) window between the two; replay
// drains the admission-ordered plan; catchup runs from the first
// post-takeover commit until the commit rate is back to half the
// pre-fault rate.
const (
	PhaseDetect  = "detect"
	PhaseDecide  = "decide"
	PhaseRestore = "restore"
	PhaseRefill  = "refill"
	PhaseReplay  = "replay"
	PhaseCatchup = "catchup"
)

// Phases lists every phase in canonical order.
var Phases = []string{PhaseDetect, PhaseDecide, PhaseRestore, PhaseRefill, PhaseReplay, PhaseCatchup}

// Span is one instrumented phase window, attributed to a partition and
// the worker that executed it. Coordinator-side phases (detect, decide)
// use Partition -1. A zero EndNs means the phase is still open.
type Span struct {
	Phase     string `json:"phase"`
	Partition int    `json:"partition"`
	Epoch     int    `json:"epoch"`
	Worker    string `json:"worker,omitempty"`
	StartNs   int64  `json:"startNs"`
	EndNs     int64  `json:"endNs,omitempty"`
	// Attribution. Bytes: checkpoint bytes loaded (restore). Records:
	// decision-log records scanned (restore) or credit gates reset
	// (refill). Events: events re-admitted (replay) or committed
	// (catchup). Drops: covered-set dedup drops (replay).
	Bytes   int64 `json:"bytes,omitempty"`
	Records int64 `json:"records,omitempty"`
	Events  int64 `json:"events,omitempty"`
	Drops   int64 `json:"drops,omitempty"`
}

// DurationMs is the span length in milliseconds (0 while open).
func (s Span) DurationMs() float64 {
	if s.EndNs == 0 || s.EndNs < s.StartNs {
		return 0
	}
	return float64(s.EndNs-s.StartNs) / 1e6
}

// RecordTransition mirrors a completed (or opened) phase span into the
// flight recorder so the recovery trail survives a process crash.
func RecordTransition(s Span) {
	if s.EndNs == 0 {
		flightrec.Recordf(flightrec.KindRecovery, "e%d p%d %s start", s.Epoch, s.Partition, s.Phase)
		return
	}
	flightrec.Recordf(flightrec.KindRecovery, "e%d p%d %s %.1fms b=%d r=%d ev=%d dr=%d",
		s.Epoch, s.Partition, s.Phase, s.DurationMs(), s.Bytes, s.Records, s.Events, s.Drops)
}

// Incident is the stitched anatomy of one recovery: every span reported
// for the post-failure epoch plus derived per-phase durations and
// attribution totals.
type Incident struct {
	Epoch      int    `json:"epoch"`
	Victim     string `json:"victim"`
	Partitions []int  `json:"partitions"`
	StartNs    int64  `json:"startNs"`
	// DetectedNs is the end of the detect phase: the moment the
	// coordinator declared the worker dead (the detection anchor for
	// recovery_detected_ms).
	DetectedNs int64  `json:"detectedNs"`
	EndNs      int64  `json:"endNs,omitempty"`
	Complete   bool   `json:"complete"`
	Spans      []Span `json:"spans"`
	// PhaseMs is the interval union of each phase's spans: overlapping
	// spans of the same phase (parallel partition restores) count once.
	PhaseMs            map[string]float64 `json:"phaseMs"`
	DominantPhase      string             `json:"dominantPhase,omitempty"`
	TotalMs            float64            `json:"totalMs"`
	RestoreBytes       int64              `json:"restoreBytes"`
	LogRecords         int64              `json:"logRecords"`
	ReplayEvents       int64              `json:"replayEvents"`
	ReplayDrops        int64              `json:"replayDrops"`
	ReplayEventsPerSec float64            `json:"replayEventsPerSec,omitempty"`
}

// Summary is the compact last-incident digest embedded in /debug/health.
type Summary struct {
	Epoch         int                `json:"epoch"`
	Victim        string             `json:"victim"`
	Complete      bool               `json:"complete"`
	TotalMs       float64            `json:"totalMs"`
	PhaseMs       map[string]float64 `json:"phaseMs"`
	DominantPhase string             `json:"dominantPhase,omitempty"`
}

// Report is the /debug/recovery payload: incidents oldest-first.
type Report struct {
	Incidents []Incident `json:"incidents"`
}

// spanKey identifies one span across repeated cumulative reports: a
// worker re-sends its full span set on every heartbeat and the
// aggregator replaces by key, so an open span's EndNs fills in later.
type spanKey struct {
	phase     string
	partition int
	worker    string
	startNs   int64
}

type incident struct {
	epoch       int
	victim      string
	partitions  []int
	startNs     int64
	detectedNs  int64
	endNs       int64
	complete    bool
	spans       map[spanKey]Span
	catchupDone map[int]bool
}

// maxIncidents bounds aggregator memory; older incidents are evicted
// oldest-first (the flight recorder keeps the long tail).
const maxIncidents = 16

// Aggregator folds phase spans into per-incident reports. It is safe
// for concurrent use; the coordinator opens incidents from its failure
// handler and folds worker spans from the STATUS path.
type Aggregator struct {
	mu       sync.Mutex
	order    []*incident
	byEpoch  map[int]*incident
	total    uint64
	complete uint64

	// Cumulative attribution totals across completed incidents, read by
	// the recovery_* counter funcs.
	cumRestoreBytes uint64
	cumLogRecords   uint64
	cumReplayEvents uint64
	cumReplayDrops  uint64

	// phaseObs, when set by RegisterMetrics, observes each phase's
	// union duration (ms) at incident completion.
	phaseObs func(phase string, ms float64)
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{byEpoch: make(map[int]*incident)}
}

// Begin opens an incident for the given post-failure epoch with the
// coordinator-side detect and decide spans already resolved.
func (a *Aggregator) Begin(epoch int, victim string, partitions []int, detect, decide Span) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.byEpoch[epoch]; ok {
		return
	}
	inc := &incident{
		epoch:       epoch,
		victim:      victim,
		partitions:  append([]int(nil), partitions...),
		startNs:     detect.StartNs,
		detectedNs:  detect.EndNs,
		spans:       make(map[spanKey]Span),
		catchupDone: make(map[int]bool),
	}
	if inc.startNs == 0 {
		inc.startNs = decide.StartNs
	}
	inc.put(detect)
	inc.put(decide)
	a.byEpoch[epoch] = inc
	a.order = append(a.order, inc)
	a.total++
	if len(a.order) > maxIncidents {
		evict := a.order[0]
		a.order = a.order[1:]
		delete(a.byEpoch, evict.epoch)
	}
}

func (inc *incident) put(s Span) {
	if s.StartNs == 0 {
		return
	}
	inc.spans[spanKey{s.Phase, s.Partition, s.Worker, s.StartNs}] = s
}

// Fold merges a batch of spans into their incidents (keyed by epoch).
// Spans for epochs with no open incident — the initial deploy, or
// incidents already evicted — are ignored. Repeated reports of the same
// span replace the previous copy, so cumulative worker snapshots are
// safe to fold on every heartbeat.
func (a *Aggregator) Fold(spans []Span) {
	a.mu.Lock()
	defer a.mu.Unlock()
	touched := make(map[*incident]bool)
	for _, s := range spans {
		inc := a.byEpoch[s.Epoch]
		if inc == nil || inc.complete {
			continue
		}
		// Epoch refreshes retag surviving partitions without rebuilding
		// them, so their reports can carry pre-failure spans at the new
		// epoch; anything that started before the incident cannot be
		// part of its recovery.
		if s.StartNs < inc.startNs {
			continue
		}
		inc.put(s)
		if s.Phase == PhaseCatchup && s.EndNs != 0 {
			inc.catchupDone[s.Partition] = true
		}
		touched[inc] = true
	}
	for inc := range touched {
		a.maybeCompleteLocked(inc)
	}
}

// maybeCompleteLocked marks the incident complete once every moved
// partition has finished catch-up and every reported span is closed
// (catch-up can end while a slow replay's closing report is still a
// heartbeat away), stamps the end time, and feeds the
// completed-incident metrics.
func (a *Aggregator) maybeCompleteLocked(inc *incident) {
	if inc.complete {
		return
	}
	for _, p := range inc.partitions {
		if !inc.catchupDone[p] {
			return
		}
	}
	for _, s := range inc.spans {
		if s.EndNs == 0 {
			return
		}
	}
	inc.complete = true
	for _, s := range inc.spans {
		if s.EndNs > inc.endNs {
			inc.endNs = s.EndNs
		}
	}
	a.complete++
	view := inc.view()
	a.cumRestoreBytes += uint64(view.RestoreBytes)
	a.cumLogRecords += uint64(view.LogRecords)
	a.cumReplayEvents += uint64(view.ReplayEvents)
	a.cumReplayDrops += uint64(view.ReplayDrops)
	if a.phaseObs != nil {
		for ph, ms := range view.PhaseMs {
			a.phaseObs(ph, ms)
		}
	}
}

// view derives the exported Incident from the raw span set.
func (inc *incident) view() Incident {
	out := Incident{
		Epoch:      inc.epoch,
		Victim:     inc.victim,
		Partitions: append([]int(nil), inc.partitions...),
		StartNs:    inc.startNs,
		DetectedNs: inc.detectedNs,
		EndNs:      inc.endNs,
		Complete:   inc.complete,
		PhaseMs:    make(map[string]float64, len(Phases)),
	}
	byPhase := make(map[string][]Span, len(Phases))
	var lastEnd int64
	for _, s := range inc.spans {
		out.Spans = append(out.Spans, s)
		byPhase[s.Phase] = append(byPhase[s.Phase], s)
		if s.EndNs > lastEnd {
			lastEnd = s.EndNs
		}
		switch s.Phase {
		case PhaseRestore:
			out.RestoreBytes += s.Bytes
			out.LogRecords += s.Records
		case PhaseReplay:
			out.ReplayEvents += s.Events
			out.ReplayDrops += s.Drops
		}
	}
	sort.Slice(out.Spans, func(i, j int) bool {
		if out.Spans[i].StartNs != out.Spans[j].StartNs {
			return out.Spans[i].StartNs < out.Spans[j].StartNs
		}
		return out.Spans[i].Partition < out.Spans[j].Partition
	})
	var dominant string
	var dominantMs float64
	for ph, spans := range byPhase {
		ms := unionMs(spans)
		out.PhaseMs[ph] = ms
		if ms > dominantMs {
			dominant, dominantMs = ph, ms
		}
	}
	out.DominantPhase = dominant
	end := inc.endNs
	if end == 0 {
		end = lastEnd
	}
	if end > inc.startNs && inc.startNs != 0 {
		out.TotalMs = float64(end-inc.startNs) / 1e6
	}
	if ms := out.PhaseMs[PhaseReplay]; ms > 0 && out.ReplayEvents > 0 {
		out.ReplayEventsPerSec = float64(out.ReplayEvents) / (ms / 1e3)
	}
	return out
}

// PhaseMsWithin recomputes the per-phase interval-union durations with
// every span clipped to the [startNs, endNs] window. Callers comparing
// the instrumented timeline against an external clock (the campaign's
// black-box dip) use this to align anchors first: the incident starts
// at the victim's last heartbeat — before the fault was even injected —
// and ends at the coordinator's fold-granular catch-up close, so raw
// sums legitimately overshoot a dip measured injection-to-recovery.
func (inc Incident) PhaseMsWithin(startNs, endNs int64) map[string]float64 {
	byPhase := make(map[string][]Span, len(Phases))
	for _, s := range inc.Spans {
		if s.EndNs <= startNs || s.StartNs >= endNs {
			continue
		}
		c := s
		if c.StartNs < startNs {
			c.StartNs = startNs
		}
		if c.EndNs > endNs {
			c.EndNs = endNs
		}
		byPhase[c.Phase] = append(byPhase[c.Phase], c)
	}
	out := make(map[string]float64, len(byPhase))
	for ph, spans := range byPhase {
		out[ph] = unionMs(spans)
	}
	return out
}

// unionMs is the interval-union length of the closed spans, in
// milliseconds: overlapping windows (parallel partition restores)
// count once, so per-phase durations sum to wall coverage.
func unionMs(spans []Span) float64 {
	type iv struct{ a, b int64 }
	ivs := make([]iv, 0, len(spans))
	for _, s := range spans {
		if s.EndNs > s.StartNs {
			ivs = append(ivs, iv{s.StartNs, s.EndNs})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var total, curA, curB int64
	curA, curB = ivs[0].a, ivs[0].b
	for _, v := range ivs[1:] {
		if v.a > curB {
			total += curB - curA
			curA, curB = v.a, v.b
			continue
		}
		if v.b > curB {
			curB = v.b
		}
	}
	total += curB - curA
	return float64(total) / 1e6
}

// Report returns every retained incident, oldest first.
func (a *Aggregator) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := Report{Incidents: make([]Incident, 0, len(a.order))}
	for _, inc := range a.order {
		rep.Incidents = append(rep.Incidents, inc.view())
	}
	return rep
}

// Last returns the most recent incident's digest, or nil if none.
func (a *Aggregator) Last() *Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.order) == 0 {
		return nil
	}
	v := a.order[len(a.order)-1].view()
	return &Summary{
		Epoch:         v.Epoch,
		Victim:        v.Victim,
		Complete:      v.Complete,
		TotalMs:       v.TotalMs,
		PhaseMs:       v.PhaseMs,
		DominantPhase: v.DominantPhase,
	}
}

// IncidentsTotal reports how many incidents have ever been opened.
func (a *Aggregator) IncidentsTotal() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}
