package recovery

import "streammine/internal/metrics"

// RegisterMetrics exposes the aggregator as doc-enforced recovery_*
// series (see docs/OBSERVABILITY.md). Per-phase durations feed labeled
// raw-unit HDRs (milliseconds) at incident completion; everything else
// is read lazily at exposition time.
func RegisterMetrics(a *Aggregator, reg *metrics.Registry) {
	reg.CounterFunc("recovery_incidents_total",
		"Recovery incidents opened (coordinator-declared worker failures).",
		nil, a.IncidentsTotal)
	reg.CounterFunc("recovery_incidents_complete_total",
		"Recovery incidents that reached catch-up on every moved partition.",
		nil, func() uint64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return a.complete
		})
	reg.CounterFunc("recovery_restore_bytes_total",
		"Checkpoint bytes loaded across completed recoveries.",
		nil, func() uint64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return a.cumRestoreBytes
		})
	reg.CounterFunc("recovery_log_records_total",
		"Decision-log records scanned across completed recoveries.",
		nil, func() uint64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return a.cumLogRecords
		})
	reg.CounterFunc("recovery_replay_events_total",
		"Events re-admitted through replay plans across completed recoveries.",
		nil, func() uint64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return a.cumReplayEvents
		})
	reg.CounterFunc("recovery_replay_dedup_drops_total",
		"Covered-set duplicate drops during replay across completed recoveries.",
		nil, func() uint64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return a.cumReplayDrops
		})
	reg.GaugeFunc("recovery_last_total_ms",
		"End-to-end duration of the most recent recovery incident.",
		nil, func() float64 {
			if s := a.Last(); s != nil {
				return s.TotalMs
			}
			return 0
		})
	reg.GaugeFunc("recovery_last_replay_events_per_sec",
		"Replay throughput of the most recent recovery incident.",
		nil, func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			if len(a.order) == 0 {
				return 0
			}
			return a.order[len(a.order)-1].view().ReplayEventsPerSec
		})

	hdrs := make(map[string]*metrics.HDR, len(Phases))
	for _, ph := range Phases {
		hdrs[ph] = reg.HDRCountsWith("recovery_phase_ms",
			"Per-phase duration distribution (milliseconds) across completed recoveries.",
			metrics.Labels{"phase": ph})
	}
	a.mu.Lock()
	a.phaseObs = func(phase string, ms float64) {
		if h := hdrs[phase]; h != nil {
			h.Observe(int64(ms))
		}
	}
	a.mu.Unlock()
}
