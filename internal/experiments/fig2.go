package experiments

import (
	"fmt"
	"time"

	"streammine/internal/storage"
)

// Fig2Config is one logging configuration of Figure 2.
type Fig2Config struct {
	Name string
	// Disks is the number of storage points.
	Disks int
	// WriteLatency is the per-write stable-storage time.
	WriteLatency time.Duration
}

// Fig2Result carries the structured numbers behind the table (tests
// assert on these rather than parsing strings).
type Fig2Result struct {
	Config      Fig2Config
	NonSpec     time.Duration
	Speculative time.Duration
}

// fig2Configs mirrors the paper's five x-axis configurations: one to
// three local hard drives (modelled at 12 ms/write) and the two simulated
// fast disks (10 ms and 5 ms).
func fig2Configs(cfg Config) []Fig2Config {
	hdd := 12 * time.Millisecond
	sim10 := 10 * time.Millisecond
	sim5 := 5 * time.Millisecond
	if cfg.Quick {
		// Stay well above the host's sleep granularity (~1 ms) so the
		// configurations remain distinguishable.
		hdd, sim10, sim5 = 5*time.Millisecond, 4*time.Millisecond, 2*time.Millisecond
	}
	return []Fig2Config{
		{Name: "1 disk", Disks: 1, WriteLatency: hdd},
		{Name: "2 disks", Disks: 2, WriteLatency: hdd},
		{Name: "3 disks", Disks: 3, WriteLatency: hdd},
		{Name: "Sim 10", Disks: 1, WriteLatency: sim10},
		{Name: "Sim 5", Disks: 1, WriteLatency: sim5},
	}
}

// RunFig2 reproduces Figure 2: end-to-end latency of a two-component
// pipeline (each logging one 64-bit decision per event) across logging
// configurations, speculative vs non-speculative. Both components share
// one writer pool, exactly as in the paper ("the two components ... share
// the same logging queues and storage").
func RunFig2(cfg Config) (*Table, []Fig2Result, error) {
	events := 20
	window := time.Millisecond
	if cfg.Quick {
		events = 8
		window = 500 * time.Microsecond
	}
	var results []Fig2Result
	table := &Table{
		ID:     "fig2",
		Title:  "End-to-end latency, 2 components, per logging configuration (ms)",
		Header: []string{"config", "non-spec", "speculative", "gain"},
	}
	for _, c := range fig2Configs(cfg) {
		run := func(spec bool) (time.Duration, error) {
			disks := make([]storage.Disk, c.Disks)
			for i := range disks {
				disks[i] = storage.NewSimDisk(c.WriteLatency, 0)
			}
			pool := storage.NewPoolDelayed(disks, window)
			defer pool.Close()
			return measureChain(chainSpec{ops: 2, speculative: spec, shared: pool}, events)
		}
		nonspec, err := run(false)
		if err != nil {
			return nil, nil, fmt.Errorf("fig2 %s non-spec: %w", c.Name, err)
		}
		spec, err := run(true)
		if err != nil {
			return nil, nil, fmt.Errorf("fig2 %s spec: %w", c.Name, err)
		}
		results = append(results, Fig2Result{Config: c, NonSpec: nonspec, Speculative: spec})
		table.Rows = append(table.Rows, []string{
			c.Name, ms(nonspec), ms(spec),
			fmt.Sprintf("%.2fx", float64(nonspec)/float64(spec)),
		})
	}
	return table, results, nil
}
