package experiments

import (
	"fmt"
	"time"

	"streammine/internal/core"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

// Fig5Result is one state-size phase of Figure 5.
type Fig5Result struct {
	// StateSize is the number of independent state fields (classes).
	StateSize int
	// SpeedUp is sequential wall time / parallel (8-thread) wall time.
	SpeedUp float64
	// AbortRate is aborted executions / total executions in the parallel
	// run, in percent.
	AbortRate float64
}

// RunFig5 reproduces Figure 5: local speed-up and abort rate of an
// optimistically parallelized operator as the available parallelism in the
// workload varies. The paper varies the number of fields in the component
// state over time; here each field count is one phase. One field means any
// two concurrent executions collide (no parallelism, high abort rate);
// many fields let speculative executions commute.
func RunFig5(cfg Config) (*Table, []Fig5Result, error) {
	// The nominal cost must dwarf the host's sleep-granularity overhead
	// (~1 ms) or the sequential run pays disproportionally more overhead
	// per event and the speed-up overshoots the worker count.
	sizes := []int{1, 2, 4, 8, 16, 32, 64}
	events := 200
	cost := 2 * time.Millisecond
	if cfg.Quick {
		sizes = []int{1, 8, 64}
		events = 120
		cost = 200 * time.Microsecond
	}
	const parallelWorkers = 8

	table := &Table{
		ID:     "fig5",
		Title:  "Speed-up and abort rate vs state size (8 worker threads)",
		Header: []string{"state fields", "speed-up", "aborts %"},
	}
	var results []Fig5Result
	for _, k := range sizes {
		seq, _, err := fig5Phase(k, 1, events, cost)
		if err != nil {
			return nil, nil, fmt.Errorf("fig5 k=%d sequential: %w", k, err)
		}
		par, stats, err := fig5Phase(k, parallelWorkers, events, cost)
		if err != nil {
			return nil, nil, fmt.Errorf("fig5 k=%d parallel: %w", k, err)
		}
		executions := stats.Committed + stats.Aborts
		abortPct := 0.0
		if executions > 0 {
			abortPct = 100 * float64(stats.Aborts) / float64(executions)
		}
		r := Fig5Result{
			StateSize: k,
			SpeedUp:   float64(seq) / float64(par),
			AbortRate: abortPct,
		}
		results = append(results, r)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2f", r.SpeedUp),
			fmt.Sprintf("%.1f", r.AbortRate),
		})
	}
	return table, results, nil
}

// fig5Phase measures the wall time to process `events` through a costly
// classifier with k state fields and the given worker count.
func fig5Phase(k, workers, events int, cost time.Duration) (time.Duration, core.NodeStats, error) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:        "proc",
		Op:          &costlyClassifier{classes: k, cost: cost},
		Traits:      operator.Traits{Stateful: true, Deterministic: true, StateWords: k},
		Speculative: true,
		Workers:     workers,
	})
	g.Connect(src, 0, proc, 0)

	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, withMetrics(core.Options{Pool: pool, Seed: uint64(k)}))
	if err != nil {
		return 0, core.NodeStats{}, err
	}
	if err := eng.Start(); err != nil {
		return 0, core.NodeStats{}, err
	}
	defer eng.Stop()
	handle, err := eng.Source(src)
	if err != nil {
		return 0, core.NodeStats{}, err
	}

	start := time.Now()
	for i := 0; i < events; i++ {
		// Uniform keys: with k fields the collision probability per pair
		// of in-flight events is ≈ 1/k.
		if _, err := handle.Emit(uint64(i)*2654435761, nil); err != nil {
			return 0, core.NodeStats{}, err
		}
	}
	eng.Drain()
	elapsed := time.Since(start)
	if err := eng.Err(); err != nil {
		return 0, core.NodeStats{}, err
	}
	stats, err := eng.Stats(proc)
	if err != nil {
		return 0, core.NodeStats{}, err
	}
	return elapsed, stats, nil
}
