package experiments

import (
	"fmt"
	"sync"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

// Fig67Mode is one engine configuration of Figures 6 and 7.
type Fig67Mode struct {
	Name        string
	Speculative bool
	Workers     int
}

// fig67Modes mirrors the paper's four curves.
func fig67Modes() []Fig67Mode {
	return []Fig67Mode{
		{Name: "non-spec", Speculative: false, Workers: 1},
		{Name: "spec 1 thread", Speculative: true, Workers: 1},
		{Name: "spec 2 threads", Speculative: true, Workers: 2},
		{Name: "spec 6 threads", Speculative: true, Workers: 6},
	}
}

// Fig67Point is one (mode, rate) measurement.
type Fig67Point struct {
	Mode       string
	BothLog    bool
	InputRate  int // offered events/second (both sources combined)
	MeanLat    time.Duration
	OutputRate float64 // finalized events/second during the window
}

// RunFig6 reproduces Figure 6 (latency vs input rate; (a) only the union
// logs, (b) both operators log) and RunFig7 reads the throughput response
// (Figure 7) from the same runs.
//
// The application is the paper's: two publishers → union (cheap, order-
// sensitive, logged) → count sketch (computationally expensive,
// optimistically parallelized).
func RunFig6(cfg Config) (*Table, *Table, []Fig67Point, error) {
	rates := []int{1000, 2000, 3000, 5000, 10000, 20000}
	window := 1200 * time.Millisecond
	cost := 400 * time.Microsecond
	diskLat := 5 * time.Millisecond
	if cfg.Quick {
		// The 400 µs simulated cost sleeps for ≈1.1 ms on a coarse-timer
		// host, so single-thread capacity is ≈900 ev/s: 400 ev/s sits
		// safely below saturation, 6000 ev/s safely above.
		rates = []int{400, 6000}
		window = 500 * time.Millisecond
		diskLat = 4 * time.Millisecond
	}

	latTable := &Table{
		ID:     "fig6",
		Title:  "Latency response vs input rate (ms); (a) union logs / (b) both log",
		Header: []string{"logging", "rate ev/s"},
	}
	thrTable := &Table{
		ID:     "fig7",
		Title:  "Throughput response vs input rate (finalized ev/s)",
		Header: []string{"logging", "rate ev/s"},
	}
	modes := fig67Modes()
	for _, m := range modes {
		latTable.Header = append(latTable.Header, m.Name)
		thrTable.Header = append(thrTable.Header, m.Name)
	}

	var points []Fig67Point
	for _, bothLog := range []bool{false, true} {
		logName := "(a) union"
		if bothLog {
			logName = "(b) both"
		}
		for _, rate := range rates {
			latRow := []string{logName, fmt.Sprintf("%d", rate)}
			thrRow := []string{logName, fmt.Sprintf("%d", rate)}
			for _, m := range modes {
				p, err := runFig67Point(m, bothLog, rate, window, cost, diskLat)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("fig6/7 %s rate=%d: %w", m.Name, rate, err)
				}
				points = append(points, p)
				latRow = append(latRow, ms(p.MeanLat))
				thrRow = append(thrRow, fmt.Sprintf("%.0f", p.OutputRate))
			}
			latTable.Rows = append(latTable.Rows, latRow)
			thrTable.Rows = append(thrTable.Rows, thrRow)
		}
	}
	return latTable, thrTable, points, nil
}

func runFig67Point(mode Fig67Mode, bothLog bool, rate int, window, cost, diskLat time.Duration) (Fig67Point, error) {
	const sketchDepth, sketchWidth = 4, 1024
	g := graph.New()
	p1 := g.AddNode(graph.Node{Name: "p1"})
	p2 := g.AddNode(graph.Node{Name: "p2"})
	union := g.AddNode(graph.Node{
		Name: "union",
		Op:   &operator.Union{},
		// Stateful marks the input interleaving as a logged decision.
		Traits:      operator.Traits{Stateful: true, OrderSensitive: true},
		Speculative: mode.Speculative,
	})
	sketchTraits := operator.Traits{StateWords: sketchDepth * sketchWidth}
	if bothLog {
		sketchTraits.Stateful = true
	}
	sk := g.AddNode(graph.Node{
		Name:        "sketch",
		Op:          &stampedSketch{depth: sketchDepth, width: sketchWidth, seed: 7, cost: cost},
		Traits:      sketchTraits,
		Speculative: mode.Speculative,
		Workers:     mode.Workers,
	})
	g.Connect(p1, 0, union, 0)
	g.Connect(p2, 0, union, 1)
	g.Connect(union, 0, sk, 0)

	pool := storage.NewPoolDelayed([]storage.Disk{storage.NewSimDisk(diskLat, 0)}, diskLat/10)
	defer pool.Close()
	eng, err := core.New(g, withMetrics(core.Options{Pool: pool, Seed: 5}))
	if err != nil {
		return Fig67Point{}, err
	}
	if err := eng.Start(); err != nil {
		return Fig67Point{}, err
	}
	defer eng.Stop()

	anchor := time.Now()
	var mu sync.Mutex
	var totalLat time.Duration
	var finals int
	if err := eng.Subscribe(sk, 0, func(ev event.Event, final bool) {
		if !final {
			return
		}
		sent := time.Duration(operator.DecodeValue(ev.Payload))
		lat := time.Since(anchor) - sent
		mu.Lock()
		totalLat += lat
		finals++
		mu.Unlock()
	}); err != nil {
		return Fig67Point{}, err
	}

	s1, err := eng.Source(p1)
	if err != nil {
		return Fig67Point{}, err
	}
	s2, err := eng.Source(p2)
	if err != nil {
		return Fig67Point{}, err
	}

	// Two paced publishers, each at rate/2. Pacing is deficit-based with
	// millisecond sleeps: spinning would monopolize small hosts (this
	// reproduction must run on a single core), and sleeps shorter than the
	// scheduler granularity cannot pace 30k ev/s individually.
	halfRate := rate / 2
	var wg sync.WaitGroup
	publish := func(s *core.SourceHandle, seed uint64) {
		defer wg.Done()
		start := time.Now()
		emitted := 0
		for {
			elapsed := time.Since(start)
			if elapsed >= window {
				return
			}
			due := int(elapsed.Seconds()*float64(halfRate)) + 1
			for emitted < due {
				payload := operator.EncodeValue(uint64(time.Since(anchor).Nanoseconds()))
				if _, err := s.Emit(seed+uint64(emitted), payload); err != nil {
					return
				}
				emitted++
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	wg.Add(2)
	go publish(s1, 1)
	go publish(s2, 1<<40)
	wg.Wait()
	// Grace period: let in-flight events finalize, but do not fully drain
	// a saturated backlog (the paper measures steady-state response).
	time.Sleep(window / 2)
	eng.Stop()
	if err := eng.Err(); err != nil {
		return Fig67Point{}, err
	}

	mu.Lock()
	defer mu.Unlock()
	p := Fig67Point{Mode: mode.Name, BothLog: bothLog, InputRate: rate}
	if finals > 0 {
		p.MeanLat = totalLat / time.Duration(finals)
	}
	p.OutputRate = float64(finals) / (window + window/2).Seconds()
	return p, nil
}
