package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

var quick = Config{Quick: true}

// TestFig2Shape: speculation must beat the non-speculative baseline in
// every logging configuration, most clearly in the shared-single-disk
// one (the paper reports roughly a halving).
func TestFig2Shape(t *testing.T) {
	table, results, err := RunFig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("configs = %d, want 5", len(results))
	}
	for _, r := range results {
		if r.Speculative >= r.NonSpec {
			t.Errorf("%s: spec %v >= non-spec %v", r.Config.Name, r.Speculative, r.NonSpec)
		}
	}
	// Sim 5 must be faster than Sim 10 on the non-speculative side, where
	// the write latency is paid twice. (The speculative side pays it once,
	// so at quick-mode scales the difference drowns in timer granularity.)
	sim10, sim5 := results[3], results[4]
	if sim5.NonSpec >= sim10.NonSpec {
		t.Errorf("Sim5 non-spec not faster than Sim10: %+v vs %+v", sim5, sim10)
	}
	if !strings.Contains(table.String(), "Sim 10") {
		t.Error("table missing Sim 10 row")
	}
}

// TestFig3Shape: non-speculative latency grows roughly linearly with the
// operator count; speculative latency stays nearly flat (the headline
// claim).
func TestFig3Shape(t *testing.T) {
	_, results, err := RunFig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	byLat := make(map[time.Duration][]Fig3Result)
	for _, r := range results {
		byLat[r.LogLatency] = append(byLat[r.LogLatency], r)
	}
	for d, series := range byLat {
		first, last := series[0], series[len(series)-1]
		ratio := float64(last.Operators) / float64(first.Operators)
		nonspecGrowth := float64(last.NonSpec) / float64(first.NonSpec)
		if nonspecGrowth < ratio*0.6 {
			t.Errorf("log %v: non-spec grew only %.2fx over %.1fx more operators", d, nonspecGrowth, ratio)
		}
		// Flatness in absolute terms: adding operators must cost the
		// speculative pipeline less than half of what it costs the
		// non-speculative one (it pays per-hop processing, not per-hop
		// disk writes). A pure ratio test is too noisy at quick scales.
		specDelta := last.Speculative - first.Speculative
		nonspecDelta := last.NonSpec - first.NonSpec
		if specDelta*2 >= nonspecDelta {
			t.Errorf("log %v: speculative latency grew %v over the chain vs non-spec %v — not flat",
				d, specDelta, nonspecDelta)
		}
		// At the longest chain, speculation must win by a wide margin.
		if last.Speculative*2 >= last.NonSpec {
			t.Errorf("log %v: at %d ops spec %v vs non-spec %v — less than 2x win",
				d, last.Operators, last.Speculative, last.NonSpec)
		}
	}
}

// TestFig4Shape: the sequential run's peak latency during the burst far
// exceeds the 2-thread run's peak, and the flow-bounded mode keeps the
// processor's peak data-lane occupancy within its configured capacity.
func TestFig4Shape(t *testing.T) {
	_, results, err := RunFig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("modes = %d", len(results))
	}
	seq, par, bounded := results[0], results[1], results[2]
	if seq.PeakLatency() < par.PeakLatency()*2 {
		t.Errorf("sequential peak %.2fms not >> parallel peak %.2fms",
			seq.PeakLatency(), par.PeakLatency())
	}
	if bounded.DataCap != 32 {
		t.Fatalf("bounded mode data cap = %d, want 32", bounded.DataCap)
	}
	if bounded.DataHighWater > bounded.DataCap {
		t.Errorf("peak occupancy %d exceeds cap %d",
			bounded.DataHighWater, bounded.DataCap)
	}
	if seq.DataCap != 0 || par.DataCap != 0 {
		t.Errorf("unbounded modes report caps %d/%d", seq.DataCap, par.DataCap)
	}
}

// TestFig5Shape: no speed-up (and a high abort rate) with one state field;
// clear speed-up and low abort rate with many fields.
func TestFig5Shape(t *testing.T) {
	_, results, err := RunFig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	first := results[0]
	last := results[len(results)-1]
	if first.StateSize != 1 {
		t.Fatalf("first phase state size = %d", first.StateSize)
	}
	if first.SpeedUp > 1.6 {
		t.Errorf("one field: speed-up %.2f — should be ≈1 (no parallelism available)", first.SpeedUp)
	}
	if last.SpeedUp < 1.6 {
		t.Errorf("%d fields: speed-up %.2f — parallelism not exploited", last.StateSize, last.SpeedUp)
	}
	if first.AbortRate <= last.AbortRate {
		t.Errorf("abort rate should fall with state size: %0.1f%% (k=1) vs %0.1f%% (k=%d)",
			first.AbortRate, last.AbortRate, last.StateSize)
	}
}

// TestFig67Shape: below saturation speculative latency beats the
// non-speculative one (logging hidden), and with 6 threads the saturated
// throughput exceeds the 1-thread one.
func TestFig67Shape(t *testing.T) {
	_, _, points, err := RunFig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(mode string, bothLog bool, rate int) Fig67Point {
		for _, p := range points {
			if p.Mode == mode && p.BothLog == bothLog && p.InputRate == rate {
				return p
			}
		}
		t.Fatalf("missing point %s both=%v rate=%d", mode, bothLog, rate)
		return Fig67Point{}
	}
	lowRate := 400
	// (b) both log: speculation hides the second log write. Compare the
	// 2-thread speculative configuration, which absorbs the queueing noise
	// that makes single-thread runs wobble near their capacity.
	ns := pick("non-spec", true, lowRate)
	sp := pick("spec 2 threads", true, lowRate)
	if sp.MeanLat >= ns.MeanLat {
		t.Errorf("at %d ev/s (both log): spec latency %v >= non-spec %v", lowRate, sp.MeanLat, ns.MeanLat)
	}
	// Saturation: the 6-thread configuration must not collapse below the
	// 1-thread one at the top rate. (The *scaling factor* itself is
	// asserted deterministically by the closed-loop Fig. 5 test; this
	// open-loop point is too scheduler-sensitive on a 1-core host for a
	// strict threshold.)
	top := 6000
	one := pick("spec 1 thread", false, top)
	six := pick("spec 6 threads", false, top)
	if six.OutputRate < one.OutputRate*0.8 {
		t.Errorf("at %d ev/s: 6 threads %.0f ev/s vs 1 thread %.0f ev/s — collapsed",
			top, six.OutputRate, one.OutputRate)
	}
	t.Logf("saturated throughput: 1 thread %.0f ev/s, 6 threads %.0f ev/s", one.OutputRate, six.OutputRate)
}

// TestFig8Shape: per-access overhead is bounded, and re-execution costs
// about the same as the first execution (the paper's rollback-is-cheap
// claim).
func TestFig8Shape(t *testing.T) {
	_, results, err := RunFig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.FirstExec < r.Direct {
			continue // noise at tiny task sizes
		}
		// Re-execution within 3x of first execution (generous for noise;
		// the paper reports ≈1x), with an absolute millisecond of slack so
		// one scheduler hiccup on an instrumented run cannot fail a
		// sub-millisecond measurement.
		limit := r.FirstExec * 3
		if slack := r.FirstExec + time.Millisecond; slack > limit {
			limit = slack
		}
		if r.Reexec > limit {
			t.Errorf("%s accesses=%d: re-exec %v vs first %v", r.Task, r.Accesses, r.Reexec, r.FirstExec)
		}
	}
	// Overhead grows with access count for the cheap task: T2 with 1000
	// accesses must cost clearly more than with 1 access under the STM.
	var t2one, t2k time.Duration
	for _, r := range results {
		if r.Task == "T2" && r.Accesses == 1 {
			t2one = r.FirstExec
		}
		if r.Task == "T2" && r.Accesses == 1000 {
			t2k = r.FirstExec
		}
	}
	if t2k <= t2one {
		t.Errorf("T2: 1000 accesses (%v) not slower than 1 access (%v)", t2k, t2one)
	}
}

// TestExternalizationShape: speculative output latency must be orders of
// magnitude below the finalized latency (which pays the log write).
func TestExternalizationShape(t *testing.T) {
	_, res, err := RunExternalization(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanSpeculative*4 >= res.MeanFinal {
		t.Errorf("speculative %v not clearly below final %v", res.MeanSpeculative, res.MeanFinal)
	}
}

// TestRecoveryShape: the crash experiment must produce the full output
// set with zero content mismatches.
func TestRecoveryShape(t *testing.T) {
	_, res, err := RunRecovery(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 40 {
		t.Errorf("distinct outputs = %d, want 40", res.Events)
	}
	if res.ContentMismatches != 0 {
		t.Errorf("content mismatches = %d — precise recovery violated", res.ContentMismatches)
	}
}

// TestTaintAblationShape: TaintAll must mark strictly more outputs
// speculative than fine-grained tracking.
func TestTaintAblationShape(t *testing.T) {
	_, results, err := RunTaintAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	fine, all := results[0], results[1]
	if fine.FinalSent <= all.FinalSent {
		t.Errorf("fine-grained sent %d finals directly vs taint-all %d — ablation shows no difference",
			fine.FinalSent, all.FinalSent)
	}
}

// TestRelatedWorkTable: the model table renders all approaches.
func TestRelatedWorkTable(t *testing.T) {
	table, err := RunRelatedWork(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(table.Rows))
	}
}

// TestTableRendering covers the formatter.
func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "bee"}, Rows: [][]string{{"1", "2"}, {"333", "4"}}}
	s := tbl.String()
	for _, want := range []string{"demo", "bee", "333"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// TestHelpers covers the small formatting helpers.
func TestHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.50" {
		t.Errorf("ms = %q", got)
	}
	if got := us(1500 * time.Nanosecond); got != "1.5" {
		t.Errorf("us = %q", got)
	}
	if math.IsNaN(float64(1)) {
		t.Error("impossible")
	}
}
