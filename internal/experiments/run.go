package experiments

import (
	"fmt"
	"io"
)

// Runner regenerates one experiment and returns its table(s).
type Runner struct {
	ID   string
	Desc string
	Run  func(cfg Config) ([]*Table, error)
}

// Runners lists every experiment in paper order.
func Runners() []Runner {
	return []Runner{
		{ID: "2", Desc: "Fig 2: latency per logging configuration", Run: func(cfg Config) ([]*Table, error) {
			t, _, err := RunFig2(cfg)
			return []*Table{t}, err
		}},
		{ID: "3", Desc: "Fig 3: latency vs number of operators", Run: func(cfg Config) ([]*Table, error) {
			t, _, err := RunFig3(cfg)
			return []*Table{t}, err
		}},
		{ID: "4", Desc: "Fig 4: latency evolution under a burst", Run: func(cfg Config) ([]*Table, error) {
			t, _, err := RunFig4(cfg)
			return []*Table{t}, err
		}},
		{ID: "5", Desc: "Fig 5: speed-up and abort rate vs state size", Run: func(cfg Config) ([]*Table, error) {
			t, _, err := RunFig5(cfg)
			return []*Table{t}, err
		}},
		{ID: "6", Desc: "Fig 6+7: latency and throughput vs input rate", Run: func(cfg Config) ([]*Table, error) {
			lat, thr, _, err := RunFig6(cfg)
			return []*Table{lat, thr}, err
		}},
		{ID: "8", Desc: "Fig 8: STM access overhead and rollback cost", Run: func(cfg Config) ([]*Table, error) {
			t, _, err := RunFig8(cfg)
			return []*Table{t}, err
		}},
		{ID: "external", Desc: "§4 closing scenario: speculative externalization", Run: func(cfg Config) ([]*Table, error) {
			t, _, err := RunExternalization(cfg)
			return []*Table{t}, err
		}},
		{ID: "recovery", Desc: "§2.2 precise recovery under a crash", Run: func(cfg Config) ([]*Table, error) {
			t, _, err := RunRecovery(cfg)
			return []*Table{t}, err
		}},
		{ID: "related", Desc: "§5 related-work latency models", Run: func(cfg Config) ([]*Table, error) {
			t, err := RunRelatedWork(cfg)
			return []*Table{t}, err
		}},
		{ID: "ablation", Desc: "DESIGN §6.1 taint-policy ablation", Run: func(cfg Config) ([]*Table, error) {
			t, _, err := RunTaintAblation(cfg)
			return []*Table{t}, err
		}},
	}
}

// RunAll executes every experiment, writing tables to w as they finish.
func RunAll(cfg Config, w io.Writer) error {
	for _, r := range Runners() {
		fmt.Fprintf(w, "--- running %s (%s) ---\n", r.ID, r.Desc)
		tables, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", r.ID, err)
		}
		for _, t := range tables {
			fmt.Fprintln(w, t.String())
		}
	}
	return nil
}
