package experiments

import (
	"fmt"
	"time"

	"streammine/internal/storage"
)

// Fig3Result is one (operators, logging time) point of Figure 3.
type Fig3Result struct {
	Operators   int
	LogLatency  time.Duration
	NonSpec     time.Duration
	Speculative time.Duration
}

// RunFig3 reproduces Figure 3: end-to-end latency versus pipeline length
// (2–7 logging operators) for 10 ms and 5 ms logging, speculative vs
// non-speculative. Every operator owns its storage (the paper runs each as
// its own process), so speculative latency stays flat while the
// non-speculative one grows linearly.
func RunFig3(cfg Config) (*Table, []Fig3Result, error) {
	lats := []time.Duration{10 * time.Millisecond, 5 * time.Millisecond}
	counts := []int{2, 3, 4, 5, 6, 7}
	events := 15
	if cfg.Quick {
		lats = []time.Duration{4 * time.Millisecond, 2 * time.Millisecond}
		counts = []int{2, 4, 7}
		events = 6
	}
	table := &Table{
		ID:     "fig3",
		Title:  "End-to-end latency vs number of operators (ms)",
		Header: []string{"operators", "log", "non-spec", "speculative"},
	}
	var results []Fig3Result
	for _, d := range lats {
		for _, n := range counts {
			run := func(spec bool) (time.Duration, error) {
				return measureChain(chainSpec{
					ops:         n,
					speculative: spec,
					perNodePool: func() *storage.Pool {
						return storage.NewPool([]storage.Disk{storage.NewSimDisk(d, 0)})
					},
				}, events)
			}
			nonspec, err := run(false)
			if err != nil {
				return nil, nil, fmt.Errorf("fig3 n=%d d=%v non-spec: %w", n, d, err)
			}
			spec, err := run(true)
			if err != nil {
				return nil, nil, fmt.Errorf("fig3 n=%d d=%v spec: %w", n, d, err)
			}
			results = append(results, Fig3Result{Operators: n, LogLatency: d, NonSpec: nonspec, Speculative: spec})
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%d", n), ms(d), ms(nonspec), ms(spec),
			})
		}
	}
	return table, results, nil
}
