package experiments

import (
	"time"

	"streammine/internal/event"
	"streammine/internal/operator"
	"streammine/internal/sketch"
	"streammine/internal/state"
)

// costlyClassifier is the measurement variant of operator.Classifier: it
// burns CPU, updates one of K class counters, and forwards the *input*
// payload unchanged so latency stamps survive the hop.
type costlyClassifier struct {
	classes int
	cost    time.Duration
	counts  state.Array
}

var _ operator.Operator = (*costlyClassifier)(nil)

func (c *costlyClassifier) Init(ctx operator.InitContext) error {
	arr, err := state.NewArray(ctx.Memory(), c.classes)
	if err != nil {
		return err
	}
	c.counts = arr
	return nil
}

// Process follows the read–compute–write pattern of instrumented code:
// the class counter is read before the computation and written after it,
// so two concurrent executions hitting the same class genuinely conflict
// across the whole execution window (paper Fig. 5's collision semantics).
func (c *costlyClassifier) Process(ctx operator.Context, e event.Event) error {
	class := int(e.Key % uint64(c.classes))
	v, err := c.counts.Get(ctx.Tx(), class)
	if err != nil {
		return err
	}
	operator.SimulateWork(c.cost)
	if err := c.counts.Set(ctx.Tx(), class, v+1); err != nil {
		return err
	}
	return ctx.Emit(e.Key, e.Payload)
}

func (c *costlyClassifier) Terminate() error { return nil }

// stampedSketch is the measurement variant of operator.SketchOp: count-
// sketch update + estimate with simulated analysis cost, forwarding the
// input payload so latency stamps survive.
type stampedSketch struct {
	depth, width int
	seed         uint64
	cost         time.Duration
	cs           *sketch.TxCountSketch
}

var _ operator.Operator = (*stampedSketch)(nil)

func (s *stampedSketch) Init(ctx operator.InitContext) error {
	cs, err := sketch.NewTxCountSketch(ctx.Memory(), s.depth, s.width, s.seed)
	if err != nil {
		return err
	}
	s.cs = cs
	return nil
}

func (s *stampedSketch) Process(ctx operator.Context, e event.Event) error {
	operator.SimulateWork(s.cost)
	if err := s.cs.Update(ctx.Tx(), e.Key, 1); err != nil {
		return err
	}
	if _, err := s.cs.Estimate(ctx.Tx(), e.Key); err != nil {
		return err
	}
	return ctx.Emit(e.Key, e.Payload)
}

func (s *stampedSketch) Terminate() error { return nil }

// partialLogger forwards events, taking a logged random decision only for
// every k-th key. It creates the mixed open/clean task population that
// separates the fine-grained taint rule from the TaintAll ablation.
type partialLogger struct {
	operator.NopOperator
	every uint64
}

var _ operator.Operator = (*partialLogger)(nil)

func (p *partialLogger) Process(ctx operator.Context, e event.Event) error {
	if p.every > 0 && e.Key%p.every == 0 {
		if _, err := ctx.Random(); err != nil {
			return err
		}
	}
	return ctx.Emit(e.Key, e.Payload)
}
