package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"streammine/internal/baseline"
	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

// ExternalizationResult summarizes the §4 closing scenario.
type ExternalizationResult struct {
	MeanSpeculative time.Duration
	MeanFinal       time.Duration
}

// RunExternalization reproduces the paper's closing scenario (§4): when
// the environment is allowed to consume speculative records (filtering
// non-finalized ones with a reader-side library — here the subscription
// callback), the observed processing latency becomes independent of the
// logging latency.
func RunExternalization(cfg Config) (*Table, ExternalizationResult, error) {
	diskLat := 10 * time.Millisecond
	events := 30
	if cfg.Quick {
		diskLat = 2 * time.Millisecond
		events = 10
	}
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	pools := make(map[graph.NodeID]*storage.Pool)
	prev := src
	var last graph.NodeID
	var cleanup []*storage.Pool
	for i := 0; i < 3; i++ {
		n := g.AddNode(graph.Node{
			Name:        fmt.Sprintf("op%d", i),
			Op:          &operator.Passthrough{LogDecision: true},
			Speculative: true,
		})
		p := storage.NewPool([]storage.Disk{storage.NewSimDisk(diskLat, 0)})
		pools[n] = p
		cleanup = append(cleanup, p)
		g.Connect(prev, 0, n, 0)
		prev, last = n, n
	}
	defer func() {
		for _, p := range cleanup {
			_ = p.Close()
		}
	}()
	shared := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer shared.Close()

	eng, err := core.New(g, withMetrics(core.Options{Pool: shared, NodePools: pools, Seed: 31}))
	if err != nil {
		return nil, ExternalizationResult{}, err
	}
	if err := eng.Start(); err != nil {
		return nil, ExternalizationResult{}, err
	}
	defer eng.Stop()

	sink := newLatencySink()
	if err := eng.Subscribe(last, 0, sink.fn); err != nil {
		return nil, ExternalizationResult{}, err
	}
	handle, err := eng.Source(src)
	if err != nil {
		return nil, ExternalizationResult{}, err
	}

	var specTotal, finalTotal time.Duration
	for i := 0; i < events; i++ {
		if _, err := handle.Emit(uint64(i), sink.stamp()); err != nil {
			return nil, ExternalizationResult{}, err
		}
		select {
		case lat := <-sink.specs:
			specTotal += lat
		case <-time.After(10 * time.Second):
			return nil, ExternalizationResult{}, fmt.Errorf("no speculative output for event %d", i)
		}
		lat, err := sink.waitFinal(10 * time.Second)
		if err != nil {
			return nil, ExternalizationResult{}, err
		}
		finalTotal += lat
	}
	res := ExternalizationResult{
		MeanSpeculative: specTotal / time.Duration(events),
		MeanFinal:       finalTotal / time.Duration(events),
	}
	table := &Table{
		ID:     "external",
		Title:  "Speculative externalization (§4 closing scenario), 3 logging operators",
		Header: []string{"output kind", "mean latency"},
		Rows: [][]string{
			{"speculative record (reader filters)", res.MeanSpeculative.String()},
			{"finalized record", res.MeanFinal.String()},
		},
	}
	return table, res, nil
}

// RecoveryResult summarizes the precise-recovery experiment.
type RecoveryResult struct {
	Events             int
	DuplicatesObserved int
	ContentMismatches  int
	ReexecutedTasks    uint64
}

// RunRecovery reproduces the §2.2 recovery protocol end to end: the
// stateful Processor crashes mid-stream, restores its latest checkpoint,
// replays the logged input order and decisions, and downstream observes a
// final output sequence identical to a failure-free run (duplicates are
// byte-identical and silently dropped).
func RunRecovery(cfg Config) (*Table, RecoveryResult, error) {
	total := 120
	ckpt := 15
	if cfg.Quick {
		total = 40
		ckpt = 8
	}
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:            "proc",
		Op:              &operator.Classifier{Classes: 5},
		Traits:          operator.ClassifierTraits(5),
		Speculative:     true,
		CheckpointEvery: ckpt,
	})
	g.Connect(src, 0, proc, 0)

	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, withMetrics(core.Options{Pool: pool, Seed: 77}))
	if err != nil {
		return nil, RecoveryResult{}, err
	}
	if err := eng.Start(); err != nil {
		return nil, RecoveryResult{}, err
	}
	defer eng.Stop()

	var mu sync.Mutex
	byID := make(map[event.ID][]byte)
	res := RecoveryResult{}
	if err := eng.Subscribe(proc, 0, func(ev event.Event, final bool) {
		if !final {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := byID[ev.ID]; ok {
			res.DuplicatesObserved++
			if !bytes.Equal(prev, ev.Payload) {
				res.ContentMismatches++
			}
			return
		}
		byID[ev.ID] = append([]byte(nil), ev.Payload...)
	}); err != nil {
		return nil, RecoveryResult{}, err
	}
	handle, err := eng.Source(src)
	if err != nil {
		return nil, RecoveryResult{}, err
	}

	emit := func(from, to int) error {
		for i := from; i < to; i++ {
			if _, err := handle.Emit(uint64(i), nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(0, total/2); err != nil {
		return nil, RecoveryResult{}, err
	}
	waitOutputs := func(n int) error {
		deadline := time.Now().Add(30 * time.Second)
		for {
			mu.Lock()
			have := len(byID)
			mu.Unlock()
			if have >= n {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("stalled at %d of %d outputs", have, n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := waitOutputs(total / 4); err != nil {
		return nil, RecoveryResult{}, err
	}

	if err := eng.Crash(proc); err != nil {
		return nil, RecoveryResult{}, err
	}
	if err := eng.Recover(proc); err != nil {
		return nil, RecoveryResult{}, err
	}
	if err := emit(total/2, total); err != nil {
		return nil, RecoveryResult{}, err
	}
	if err := waitOutputs(total); err != nil {
		return nil, RecoveryResult{}, err
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		return nil, RecoveryResult{}, err
	}
	stats, err := eng.Stats(proc)
	if err != nil {
		return nil, RecoveryResult{}, err
	}
	mu.Lock()
	res.Events = len(byID)
	res.ReexecutedTasks = stats.Reexecuted
	mu.Unlock()

	table := &Table{
		ID:     "recovery",
		Title:  "Precise recovery: crash + checkpoint restore + log replay",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"distinct final outputs", fmt.Sprintf("%d (want %d)", res.Events, total)},
			{"duplicate finals observed downstream", fmt.Sprintf("%d", res.DuplicatesObserved)},
			{"duplicates with mismatching content", fmt.Sprintf("%d (precise recovery requires 0)", res.ContentMismatches)},
		},
	}
	return table, res, nil
}

// RunRelatedWork prints the §5 comparison using the analytic latency
// models: per-event output latency of each precise-recovery approach on
// the same pipeline parameters.
func RunRelatedWork(cfg Config) (*Table, error) {
	p := baseline.Params{
		Hops:              3,
		DiskLatency:       10 * time.Millisecond,
		CheckpointLatency: 25 * time.Millisecond,
		ReplicaRTT:        2 * time.Millisecond,
		DecisionsPerEvent: 2,
		Processing:        100 * time.Microsecond,
		Transport:         100 * time.Microsecond,
	}
	table := &Table{
		ID:     "related",
		Title:  "Modelled per-event latency of precise-recovery approaches (3 hops, 10ms disk)",
		Header: []string{"approach", "latency"},
	}
	for _, a := range baseline.All() {
		lat, err := baseline.Estimate(a, p)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{string(a), lat.String()})
	}
	return table, nil
}

// AblationResult compares taint policies (DESIGN.md §6.1).
type AblationResult struct {
	Policy        string
	SpecSent      uint64
	FinalSent     uint64
	MeanFinalLat  time.Duration
	EventsMeasued int
}

// RunTaintAblation measures the fine-grained dependency tracking against
// the TaintAll ablation: an operator that logs a decision for every fifth
// key keeps a rolling population of open tasks; under fine-grained
// tracking the clean tasks in between still send final outputs
// immediately, under TaintAll everything becomes speculative.
func RunTaintAblation(cfg Config) (*Table, []AblationResult, error) {
	diskLat := 10 * time.Millisecond
	events := 100
	if cfg.Quick {
		diskLat = 2 * time.Millisecond
		events = 40
	}
	table := &Table{
		ID:     "ablation-taint",
		Title:  "Fine-grained taint vs TaintAll (operator logging every 5th key)",
		Header: []string{"policy", "sent speculative", "sent final directly", "mean final latency"},
	}
	var results []AblationResult
	for _, taintAll := range []bool{false, true} {
		name := "fine-grained (paper §3.1)"
		if taintAll {
			name = "taint-all (ablation)"
		}
		g := graph.New()
		src := g.AddNode(graph.Node{Name: "src"})
		op := g.AddNode(graph.Node{
			Name:        "partial",
			Op:          &partialLogger{every: 5},
			Speculative: true,
		})
		g.Connect(src, 0, op, 0)
		pool := storage.NewPool([]storage.Disk{storage.NewSimDisk(diskLat, 0)})
		eng, err := core.New(g, withMetrics(core.Options{Pool: pool, Seed: 3, TaintAll: taintAll}))
		if err != nil {
			pool.Close()
			return nil, nil, err
		}
		if err := eng.Start(); err != nil {
			pool.Close()
			return nil, nil, err
		}
		sink := newLatencySink()
		if err := eng.Subscribe(op, 0, sink.fn); err != nil {
			eng.Stop()
			pool.Close()
			return nil, nil, err
		}
		handle, err := eng.Source(src)
		if err != nil {
			eng.Stop()
			pool.Close()
			return nil, nil, err
		}
		// Burst-emit everything: the logging tasks stay open for a full
		// disk write while the clean tasks behind them execute, which is
		// exactly the population the two taint policies treat differently
		// (pacing would make the overlap depend on timer granularity).
		for i := 0; i < events; i++ {
			if _, err := handle.Emit(uint64(i), sink.stamp()); err != nil {
				eng.Stop()
				pool.Close()
				return nil, nil, err
			}
		}
		var totalLat time.Duration
		for i := 0; i < events; i++ {
			lat, err := sink.waitFinal(20 * time.Second)
			if err != nil {
				eng.Stop()
				pool.Close()
				return nil, nil, err
			}
			totalLat += lat
		}
		stats, err := eng.Stats(op)
		eng.Stop()
		pool.Close()
		if err != nil {
			return nil, nil, err
		}
		r := AblationResult{
			Policy:        name,
			SpecSent:      stats.SpecSent,
			FinalSent:     stats.FinalSent,
			MeanFinalLat:  totalLat / time.Duration(events),
			EventsMeasued: events,
		}
		results = append(results, r)
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%d", r.SpecSent),
			fmt.Sprintf("%d", r.FinalSent),
			r.MeanFinalLat.String(),
		})
	}
	return table, results, nil
}
