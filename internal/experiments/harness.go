// Package experiments regenerates every figure in the paper's evaluation
// (Figures 2–8) plus the two non-figure scenarios of §4 (speculative
// externalization and precise recovery), on the real engine.
//
// Each runner returns a Table whose rows mirror the series the paper
// plots. Absolute numbers depend on the host; the shapes — who wins, by
// what factor, where the knees are — are asserted by the package tests
// and recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

// metricsReg, when set via SetMetricsRegistry, is handed to every engine
// the experiments construct, so a -debug-addr run exposes live engine
// metrics while the figures execute. Experiments build engines
// sequentially: func-backed series rebind to the newest engine and plain
// counters accumulate across runs (registry semantics, see
// internal/metrics).
var metricsReg atomic.Pointer[metrics.Registry]

// SetMetricsRegistry routes all subsequently built experiment engines'
// metrics to reg (nil disables).
func SetMetricsRegistry(reg *metrics.Registry) { metricsReg.Store(reg) }

// withMetrics applies the package metrics registry to engine options.
func withMetrics(opts core.Options) core.Options {
	opts.Metrics = metricsReg.Load()
	return opts
}

// Config scales an experiment run.
type Config struct {
	// Quick shrinks disk latencies, durations and event counts so the
	// whole suite finishes in seconds (used by tests and testing.B).
	Quick bool
}

// Table is a printable result: one per figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// us renders a duration in microseconds with one decimal.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000)
}

// latencySink resolves per-event latencies: payloads carry the emit
// instant (nanoseconds since the run anchor) and the sink subtracts.
type latencySink struct {
	anchor time.Time
	specs  chan time.Duration
	finals chan time.Duration
}

func newLatencySink() *latencySink {
	return &latencySink{
		anchor: time.Now(),
		specs:  make(chan time.Duration, 1<<16),
		finals: make(chan time.Duration, 1<<16),
	}
}

// stamp returns the payload for an event emitted now.
func (s *latencySink) stamp() []byte {
	return operator.EncodeValue(uint64(time.Since(s.anchor).Nanoseconds()))
}

// fn is the Subscribe callback: the first 8 payload bytes are the emit
// instant.
func (s *latencySink) fn(ev event.Event, final bool) {
	sent := time.Duration(operator.DecodeValue(ev.Payload))
	lat := time.Since(s.anchor) - sent
	if final {
		select {
		case s.finals <- lat:
		default:
		}
		return
	}
	select {
	case s.specs <- lat:
	default:
	}
}

// waitFinal blocks for the next finalized event's latency.
func (s *latencySink) waitFinal(timeout time.Duration) (time.Duration, error) {
	select {
	case lat := <-s.finals:
		return lat, nil
	case <-time.After(timeout):
		return 0, fmt.Errorf("experiments: timed out waiting for a final event")
	}
}

// chainSpec describes the Fig. 2/3 measurement pipeline: a source feeding
// N passthrough operators that each log one 64-bit decision per event.
type chainSpec struct {
	ops         int
	speculative bool
	// pools, when non-nil, gives each operator its own writer pool
	// (per-process storage, as in Fig. 3); otherwise all share `shared`.
	perNodePool func() *storage.Pool
	shared      *storage.Pool
}

// measureChain builds the chain and returns the mean end-to-end latency to
// a *final* output over the given number of sequentially issued events.
func measureChain(spec chainSpec, events int) (time.Duration, error) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	pools := make(map[graph.NodeID]*storage.Pool)
	var cleanup []*storage.Pool
	prev := src
	var last graph.NodeID
	for i := 0; i < spec.ops; i++ {
		n := g.AddNode(graph.Node{
			Name:        fmt.Sprintf("op%d", i),
			Op:          &operator.Passthrough{LogDecision: true},
			Speculative: spec.speculative,
		})
		if spec.perNodePool != nil {
			p := spec.perNodePool()
			pools[n] = p
			cleanup = append(cleanup, p)
		}
		g.Connect(prev, 0, n, 0)
		prev, last = n, n
	}
	shared := spec.shared
	if shared == nil {
		shared = storage.NewPool([]storage.Disk{storage.NewMemDisk()})
		cleanup = append(cleanup, shared)
	}
	defer func() {
		for _, p := range cleanup {
			_ = p.Close()
		}
	}()

	eng, err := core.New(g, withMetrics(core.Options{Pool: shared, NodePools: pools, Seed: 42}))
	if err != nil {
		return 0, err
	}
	if err := eng.Start(); err != nil {
		return 0, err
	}
	defer eng.Stop()

	sink := newLatencySink()
	if err := eng.Subscribe(last, 0, sink.fn); err != nil {
		return 0, err
	}
	handle, err := eng.Source(src)
	if err != nil {
		return 0, err
	}

	// One warmup event, unmeasured.
	if _, err := handle.Emit(0, sink.stamp()); err != nil {
		return 0, err
	}
	if _, err := sink.waitFinal(30 * time.Second); err != nil {
		return 0, err
	}

	var total time.Duration
	for i := 0; i < events; i++ {
		if _, err := handle.Emit(uint64(i), sink.stamp()); err != nil {
			return 0, err
		}
		lat, err := sink.waitFinal(30 * time.Second)
		if err != nil {
			return 0, err
		}
		total += lat
	}
	if err := eng.Err(); err != nil {
		return 0, err
	}
	return total / time.Duration(events), nil
}
