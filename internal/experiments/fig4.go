package experiments

import (
	"fmt"
	"math"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

// Fig4Result is one configuration's latency evolution.
type Fig4Result struct {
	Mode string
	// Buckets holds the mean end-to-end latency per time slice (NaN for
	// empty slices).
	Buckets []float64
	// BucketWidth is the slice duration.
	BucketWidth time.Duration
	// DataHighWater and DataCap are the processor's peak data-lane
	// occupancy and configured bound (zero when flow control is off).
	DataHighWater int
	DataCap       int
}

// PeakLatency returns the largest bucketed latency (ms).
func (r Fig4Result) PeakLatency() float64 {
	peak := 0.0
	for _, v := range r.Buckets {
		if !math.IsNaN(v) && v > peak {
			peak = v
		}
	}
	return peak
}

// RunFig4 reproduces Figure 4: the evolution of end-to-end latency when
// the event inter-arrival time drops below the sequential processing time
// during the middle of the run. Sequential execution builds a backlog it
// cannot drain; enabling optimistic parallelization (2 worker threads)
// keeps latency flat. Time is scaled: the paper's 50 s run shrinks to a
// few seconds (EXPERIMENTS.md records the scale).
func RunFig4(cfg Config) (*Table, []Fig4Result, error) {
	cost := 2 * time.Millisecond
	total := 6 * time.Second
	if cfg.Quick {
		total = 2 * time.Second
	}
	// Burst occupies [30%, 50%) of the run. Pacing always sleeps the
	// normal period but emits two events per tick during the burst:
	// offered load becomes ≈1.4× the sequential capacity *independent of
	// how much the scheduler stretches the sleeps* (service and pacing
	// stretch together), where the paper's 10% overload on a shorter,
	// scaled-down run would drown in scheduling noise.
	normalPeriod := cost * 14 / 10
	burstStart := total * 3 / 10
	burstEnd := total / 2
	bucket := total / 25

	// The third mode repeats the 2-thread burst with flow control: the
	// processor's data lane is bounded (credits hold the excess at the
	// source edge), so peak occupancy stays ≤ the cap while the burst
	// exceeds sustained capacity. With shedding off, no event is dropped.
	modes := []struct {
		name    string
		workers int
		fl      *flow.Limits
	}{
		{"sequential (1 thread)", 1, nil},
		{"speculative 2 threads", 2, nil},
		{"speculative 2 threads, bounded", 2, &flow.Limits{MailboxCap: 32, MaxOpenSpec: 8}},
	}

	table := &Table{
		ID:     "fig4",
		Title:  "Latency evolution under a burst (ms per time slice)",
		Header: []string{"slice"},
	}
	var results []Fig4Result
	for _, mode := range modes {
		table.Header = append(table.Header, mode.name)
		res, err := runFig4Mode(mode.workers, mode.fl, cost, total, normalPeriod, burstStart, burstEnd, bucket)
		if err != nil {
			return nil, nil, fmt.Errorf("fig4 %s: %w", mode.name, err)
		}
		res.Mode = mode.name
		results = append(results, res)
	}

	rows := 0
	for _, r := range results {
		if len(r.Buckets) > rows {
			rows = len(r.Buckets)
		}
	}
	for i := 0; i < rows; i++ {
		row := []string{fmt.Sprintf("%.1fs", (time.Duration(i) * bucket).Seconds())}
		for _, r := range results {
			if i < len(r.Buckets) && !math.IsNaN(r.Buckets[i]) {
				row = append(row, fmt.Sprintf("%.2f", r.Buckets[i]))
			} else {
				row = append(row, "-")
			}
		}
		table.Rows = append(table.Rows, row)
	}
	return table, results, nil
}

func runFig4Mode(workers int, fl *flow.Limits, cost, total, normalPeriod, burstStart, burstEnd, bucket time.Duration) (Fig4Result, error) {
	const classes = 512 // plenty of parallelism in the workload
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:        "proc",
		Op:          &costlyClassifier{classes: classes, cost: cost},
		Traits:      operator.Traits{Stateful: true, Deterministic: true, StateWords: classes},
		Speculative: true,
		Workers:     workers,
		Flow:        fl,
	})
	g.Connect(src, 0, proc, 0)

	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, withMetrics(core.Options{Pool: pool, Seed: 99}))
	if err != nil {
		return Fig4Result{}, err
	}
	if err := eng.Start(); err != nil {
		return Fig4Result{}, err
	}
	defer eng.Stop()

	series := metrics.NewTimeSeries()
	sink := newLatencySink()
	if err := eng.Subscribe(proc, 0, func(ev event.Event, final bool) {
		if !final {
			return
		}
		sent := time.Duration(operator.DecodeValue(ev.Payload))
		lat := time.Since(sink.anchor) - sent
		series.Add(float64(lat.Microseconds()) / 1000)
	}); err != nil {
		return Fig4Result{}, err
	}
	handle, err := eng.Source(src)
	if err != nil {
		return Fig4Result{}, err
	}

	start := time.Now()
	key := uint64(0)
	for {
		elapsed := time.Since(start)
		if elapsed >= total {
			break
		}
		batch := 1
		if elapsed >= burstStart && elapsed < burstEnd {
			batch = 2 // ≈1.4× sequential capacity
		}
		for i := 0; i < batch; i++ {
			if _, err := handle.Emit(key, sink.stamp()); err != nil {
				return Fig4Result{}, err
			}
			key++
		}
		time.Sleep(normalPeriod)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{Buckets: series.Buckets(bucket), BucketWidth: bucket}
	for _, p := range eng.Pressure() {
		if p.Node == "proc" {
			res.DataHighWater, res.DataCap = p.DataHighWater, p.DataCap
		}
	}
	return res, nil
}
