package experiments

import (
	"fmt"
	"sort"
	"time"

	"streammine/internal/detrand"
	"streammine/internal/operator"
	"streammine/internal/stm"
)

// Fig8Result is one (task, accesses) point of Figure 8.
type Fig8Result struct {
	Task     string
	Accesses int
	// Direct is the uninstrumented execution (plain memory).
	Direct time.Duration
	// FirstExec is the speculative transaction's execution time.
	FirstExec time.Duration
	// Reexec is rollback + re-execution time (the re-execution itself;
	// abort bookkeeping included, commit excluded as in the paper).
	Reexec time.Duration
}

// RunFig8 reproduces Figure 8: execution time of an operation versus the
// number of shared-memory accesses it performs, for an expensive task
// (T1, ≈800 µs computation) and a cheap one (T2, ≈1 µs), comparing
// non-speculative execution, the first speculative execution, and a
// rollback followed by re-execution. The paper's claims: a constant
// overhead per instrumented access, and re-execution costing about the
// same as the first execution (accesses hit random positions of a large
// state, so re-execution gains nothing from caching).
func RunFig8(cfg Config) (*Table, []Fig8Result, error) {
	t1 := 800 * time.Microsecond
	reps := 31
	accessCounts := []int{1, 10, 100, 1000}
	if cfg.Quick {
		t1 = 150 * time.Microsecond
		reps = 9
		accessCounts = []int{1, 100, 1000}
	}
	tasks := []struct {
		name string
		cost time.Duration
	}{
		{"T1", t1},
		{"T2", time.Microsecond},
	}

	const stateWords = 1 << 17 // large state defeats cache reuse
	mem := stm.NewMemory(stateWords)
	plain := make([]uint64, stateWords)

	table := &Table{
		ID:     "fig8",
		Title:  "Execution time vs shared-memory accesses (µs, median)",
		Header: []string{"task", "accesses", "direct", "spec first", "rollback+re-exec"},
	}
	var results []Fig8Result
	ts := int64(1)
	for _, task := range tasks {
		for _, n := range accessCounts {
			rng := detrand.New(uint64(n) * 31)
			addrs := make([]stm.Addr, n)
			for i := range addrs {
				addrs[i] = stm.Addr(rng.Intn(stateWords))
			}

			direct := medianOf(reps, func() error {
				operator.BusyWork(task.cost)
				for _, a := range addrs {
					plain[a] = plain[a] + 1
				}
				return nil
			})

			first := medianOf(reps, func() error {
				tx := mem.Begin(ts)
				ts++
				operator.BusyWork(task.cost)
				for _, a := range addrs {
					v, err := tx.Read(a)
					if err != nil {
						return err
					}
					if err := tx.Write(a, v+1); err != nil {
						return err
					}
				}
				if err := tx.Complete(); err != nil {
					return err
				}
				defer tx.Abort() // leave memory clean between measurements
				return nil
			})

			// Rollback + re-execution: run once, abort, and time the
			// repeated execution.
			reexec := medianOf(reps, func() error {
				tx := mem.Begin(ts)
				ts++
				operator.BusyWork(task.cost)
				for _, a := range addrs {
					v, err := tx.Read(a)
					if err != nil {
						return err
					}
					if err := tx.Write(a, v+1); err != nil {
						return err
					}
				}
				if err := tx.Complete(); err != nil {
					return err
				}
				tx.Abort()
				// The timed region includes this re-execution only via
				// medianOf's caller; see below — we time the whole body,
				// which is first-exec + abort + re-exec, then subtract the
				// measured first-exec outside.
				tx2 := mem.Begin(ts)
				ts++
				operator.BusyWork(task.cost)
				for _, a := range addrs {
					v, err := tx2.Read(a)
					if err != nil {
						return err
					}
					if err := tx2.Write(a, v+1); err != nil {
						return err
					}
				}
				if err := tx2.Complete(); err != nil {
					return err
				}
				tx2.Abort()
				return nil
			})
			// The body above contains two executions; halve to get the
			// per-execution cost including abort bookkeeping.
			reexec /= 2

			r := Fig8Result{Task: task.name, Accesses: n, Direct: direct, FirstExec: first, Reexec: reexec}
			results = append(results, r)
			table.Rows = append(table.Rows, []string{
				task.name, fmt.Sprintf("%d", n), us(direct), us(first), us(reexec),
			})
		}
	}
	return table, results, nil
}

// medianOf times fn reps times and returns the median duration.
func medianOf(reps int, fn func() error) time.Duration {
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			// Conflicts cannot happen single-threaded; treat as zero
			// rather than poisoning the median.
			continue
		}
		times = append(times, time.Since(start))
	}
	if len(times) == 0 {
		return 0
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}
