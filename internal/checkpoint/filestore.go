package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileStore is a Store backed by a directory: each operator's latest
// snapshot lives in op-<id>.ckpt, replaced atomically (temp file + fsync
// + rename) so a crash mid-save leaves the previous snapshot intact.
// Cluster workers point one at the partition's state directory so a
// reassigned partition can restore on another process.
type FileStore struct {
	mu  sync.Mutex
	dir string
}

var _ Store = (*FileStore)(nil)

// NewFileStore opens (creating if needed) a snapshot directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

func (st *FileStore) path(operator uint32) string {
	return filepath.Join(st.dir, fmt.Sprintf("op-%d.ckpt", operator))
}

// Save atomically replaces the operator's snapshot file (older epochs are
// rejected, as in MemStore).
func (st *FileStore) Save(s *Snapshot) error {
	data := Encode(s)
	st.mu.Lock()
	defer st.mu.Unlock()
	path := st.path(s.Operator)
	if prev, err := os.ReadFile(path); err == nil {
		if old, err := Decode(prev); err == nil && old.Epoch >= s.Epoch {
			return fmt.Errorf("checkpoint: stale epoch %d (have %d)", s.Epoch, old.Epoch)
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: install: %w", err)
	}
	return nil
}

// Latest reads and decodes the operator's snapshot file.
func (st *FileStore) Latest(operator uint32) (*Snapshot, error) {
	st.mu.Lock()
	data, err := os.ReadFile(st.path(operator))
	st.mu.Unlock()
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: operator %d", ErrNotFound, operator)
		}
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return Decode(data)
}
