package checkpoint

import (
	"errors"
	"testing"

	"streammine/internal/event"
)

func TestFileStoreRoundTrip(t *testing.T) {
	st, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Latest(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store: %v", err)
	}
	snap := &Snapshot{
		Operator:       7,
		Epoch:          1,
		CoveredLSN:     42,
		RandState:      99,
		Memory:         []uint64{1, 2, 3},
		InputPositions: map[int]event.ID{0: {Source: 3, Seq: 10}},
	}
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.Latest(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || got.CoveredLSN != 42 || len(got.Memory) != 3 {
		t.Fatalf("got %+v", got)
	}
	if got.InputPositions[0] != (event.ID{Source: 3, Seq: 10}) {
		t.Fatalf("positions = %v", got.InputPositions)
	}

	// Newer epoch replaces; stale epoch is rejected.
	snap.Epoch = 2
	snap.CoveredLSN = 50
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	snap.Epoch = 1
	if err := st.Save(snap); err == nil {
		t.Fatal("stale epoch accepted")
	}
	got, err = st.Latest(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || got.CoveredLSN != 50 {
		t.Fatalf("got %+v", got)
	}
}

// TestFileStoreReopen simulates a process restart: a fresh FileStore over
// the same directory sees the previous process's snapshots — the property
// cluster partition reassignment depends on.
func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	st1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Save(&Snapshot{Operator: 3, Epoch: 5, Memory: []uint64{9}}); err != nil {
		t.Fatal(err)
	}
	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Latest(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 5 || got.Memory[0] != 9 {
		t.Fatalf("got %+v", got)
	}
}
