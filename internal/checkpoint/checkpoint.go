// Package checkpoint implements operator-state snapshots. A stateful
// operator is periodically checkpointed so that upstream output buffers
// and the decision log can be pruned: after a failure the operator
// restores its latest snapshot and replays only events logged after it
// (paper §2.2).
//
// A snapshot captures everything needed to resume deterministically: the
// transactional-memory image, the PRNG state, the per-input replay
// positions, and the decision-log LSN the snapshot covers.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"streammine/internal/event"
)

// Snapshot is one checkpoint of one operator.
type Snapshot struct {
	// Operator identifies the checkpointed operator instance.
	Operator uint32
	// Epoch is the checkpoint sequence number (monotonic per operator).
	Epoch uint64
	// CoveredLSN is the decision-log position the snapshot covers: records
	// at or below it are redundant after restore.
	CoveredLSN uint64
	// RandState is the operator PRNG state at snapshot time.
	RandState uint64
	// Timestamp is the operator's logical time at snapshot time.
	Timestamp int64
	// Memory is the transactional-memory image.
	Memory []uint64
	// InputPositions records, per input index, the last event consumed
	// before the snapshot; replay starts after these.
	InputPositions map[int]event.ID
	// Outputs are the committed-but-unacknowledged output-buffer records at
	// snapshot time, in emission order. Without them a crash would lose
	// outputs whose inputs the snapshot covers: the inputs are pruned
	// upstream and replay starts after the covering point, so nothing could
	// regenerate them.
	Outputs []Output
}

// Output is one retained output-buffer record carried in a snapshot.
type Output struct {
	// ID is the output event's identity.
	ID event.ID
	// Port is the output port the event was emitted on.
	Port int
	// Timestamp is the event's logical timestamp.
	Timestamp int64
	// Key is the event's partition key.
	Key uint64
	// Version is the event's final version number.
	Version uint32
	// Trace is the event's lineage trace id (0 = untraced), preserved so
	// replayed outputs keep stitching into their original lineage.
	Trace uint64
	// Payload is the event payload.
	Payload []byte
}

// ErrCorrupt reports a snapshot that fails structural or checksum
// validation.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// ErrNotFound reports that no snapshot exists for the requested operator.
var ErrNotFound = errors.New("checkpoint: not found")

// Encode serializes the snapshot with a trailing CRC.
func Encode(s *Snapshot) []byte {
	size := 4 + 8 + 8 + 8 + 8 + 4 + len(s.Memory)*8 + 4 + len(s.InputPositions)*16 + 4
	for _, o := range s.Outputs {
		size += 52 + len(o.Payload)
	}
	buf := make([]byte, 0, size)
	var w [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:4], v)
		buf = append(buf, w[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	put32(s.Operator)
	put64(s.Epoch)
	put64(s.CoveredLSN)
	put64(s.RandState)
	put64(uint64(s.Timestamp))
	put32(uint32(len(s.Memory)))
	for _, v := range s.Memory {
		put64(v)
	}
	put32(uint32(len(s.InputPositions)))
	// Deterministic order for reproducible images.
	idxs := make([]int, 0, len(s.InputPositions))
	for i := range s.InputPositions {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		id := s.InputPositions[i]
		put32(uint32(i))
		put32(uint32(id.Source))
		put64(uint64(id.Seq))
	}
	put32(uint32(len(s.Outputs)))
	for _, o := range s.Outputs {
		put32(uint32(o.ID.Source))
		put64(uint64(o.ID.Seq))
		put32(uint32(o.Port))
		put64(uint64(o.Timestamp))
		put64(o.Key)
		put32(o.Version)
		put64(o.Trace)
		put32(uint32(len(o.Payload)))
		buf = append(buf, o.Payload...)
	}
	put32(crc32.ChecksumIEEE(buf))
	return buf
}

// Decode parses an encoded snapshot, verifying the checksum.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < 44 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	off := 0
	need := func(n int) error {
		if off+n > len(body) {
			return fmt.Errorf("%w: truncated at %d", ErrCorrupt, off)
		}
		return nil
	}
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v
	}
	get64 := func() uint64 {
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v
	}
	if err := need(40); err != nil {
		return nil, err
	}
	s := &Snapshot{
		Operator: get32(),
		Epoch:    get64(),
	}
	s.CoveredLSN = get64()
	s.RandState = get64()
	s.Timestamp = int64(get64())
	memLen := int(get32())
	if err := need(memLen * 8); err != nil {
		return nil, err
	}
	s.Memory = make([]uint64, memLen)
	for i := range s.Memory {
		s.Memory[i] = get64()
	}
	if err := need(4); err != nil {
		return nil, err
	}
	posLen := int(get32())
	if err := need(posLen * 16); err != nil {
		return nil, err
	}
	s.InputPositions = make(map[int]event.ID, posLen)
	for i := 0; i < posLen; i++ {
		idx := int(get32())
		src := get32()
		seq := get64()
		s.InputPositions[idx] = event.ID{Source: event.SourceID(src), Seq: event.Seq(seq)}
	}
	if err := need(4); err != nil {
		return nil, err
	}
	outLen := int(get32())
	for i := 0; i < outLen; i++ {
		if err := need(48); err != nil {
			return nil, err
		}
		var o Output
		o.ID = event.ID{Source: event.SourceID(get32()), Seq: event.Seq(get64())}
		o.Port = int(get32())
		o.Timestamp = int64(get64())
		o.Key = get64()
		o.Version = get32()
		o.Trace = get64()
		plen := int(get32())
		if err := need(plen); err != nil {
			return nil, err
		}
		if plen > 0 {
			o.Payload = append([]byte(nil), body[off:off+plen]...)
			off += plen
		}
		s.Outputs = append(s.Outputs, o)
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-off)
	}
	return s, nil
}

// Store persists the latest snapshot per operator. Implementations must be
// safe for concurrent use.
type Store interface {
	// Save persists s as the operator's latest snapshot.
	Save(s *Snapshot) error
	// Latest returns the operator's most recent snapshot, or ErrNotFound.
	Latest(operator uint32) (*Snapshot, error)
}

// MemStore is an in-memory Store (the default for simulations; the paper's
// experiments likewise simulate checkpoint storage).
type MemStore struct {
	mu      sync.Mutex
	byOp    map[uint32][]byte
	history map[uint32]int
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{byOp: make(map[uint32][]byte), history: make(map[uint32]int)}
}

// Save encodes and retains the snapshot, replacing any previous one for
// the same operator (older epochs are rejected).
func (st *MemStore) Save(s *Snapshot) error {
	data := Encode(s)
	st.mu.Lock()
	defer st.mu.Unlock()
	if prev, ok := st.byOp[s.Operator]; ok {
		old, err := Decode(prev)
		if err == nil && old.Epoch >= s.Epoch {
			return fmt.Errorf("checkpoint: stale epoch %d (have %d)", s.Epoch, old.Epoch)
		}
	}
	st.byOp[s.Operator] = data
	st.history[s.Operator]++
	return nil
}

// Latest decodes the operator's most recent snapshot.
func (st *MemStore) Latest(operator uint32) (*Snapshot, error) {
	st.mu.Lock()
	data, ok := st.byOp[operator]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: operator %d", ErrNotFound, operator)
	}
	return Decode(data)
}

// Saves reports how many snapshots were taken for an operator (metrics).
func (st *MemStore) Saves(operator uint32) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.history[operator]
}
