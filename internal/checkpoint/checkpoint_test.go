package checkpoint

import (
	"errors"
	"testing"
	"testing/quick"

	"streammine/internal/event"
)

func sample() *Snapshot {
	return &Snapshot{
		Operator:   7,
		Epoch:      3,
		CoveredLSN: 99,
		RandState:  0xDEADBEEF,
		Timestamp:  12345,
		Memory:     []uint64{1, 2, 3, 1 << 60},
		InputPositions: map[int]event.ID{
			0: {Source: 1, Seq: 100},
			1: {Source: 2, Seq: 200},
		},
		Outputs: []Output{
			{ID: event.ID{Source: 3, Seq: 50}, Port: 1, Timestamp: 1200, Key: 9, Version: 2, Trace: 0xfeedface, Payload: []byte("abc")},
			{ID: event.ID{Source: 3, Seq: 51}, Port: 0, Timestamp: 1201, Key: 10, Version: 1},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Operator != s.Operator || got.Epoch != s.Epoch || got.CoveredLSN != s.CoveredLSN ||
		got.RandState != s.RandState || got.Timestamp != s.Timestamp {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Memory) != len(s.Memory) {
		t.Fatalf("memory length %d, want %d", len(got.Memory), len(s.Memory))
	}
	for i := range s.Memory {
		if got.Memory[i] != s.Memory[i] {
			t.Fatalf("memory[%d] = %d, want %d", i, got.Memory[i], s.Memory[i])
		}
	}
	if len(got.InputPositions) != 2 || got.InputPositions[0] != s.InputPositions[0] ||
		got.InputPositions[1] != s.InputPositions[1] {
		t.Fatalf("positions = %+v", got.InputPositions)
	}
	if len(got.Outputs) != len(s.Outputs) {
		t.Fatalf("outputs length %d, want %d", len(got.Outputs), len(s.Outputs))
	}
	for i, o := range s.Outputs {
		g := got.Outputs[i]
		if g.ID != o.ID || g.Port != o.Port || g.Timestamp != o.Timestamp ||
			g.Key != o.Key || g.Version != o.Version || g.Trace != o.Trace ||
			string(g.Payload) != string(o.Payload) {
			t.Fatalf("outputs[%d] = %+v, want %+v", i, g, o)
		}
	}
}

func TestDecodeEmptySnapshot(t *testing.T) {
	s := &Snapshot{Operator: 1, Epoch: 1, InputPositions: map[int]event.ID{}}
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Memory) != 0 || len(got.InputPositions) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	data := Encode(sample())
	for _, i := range []int{0, 10, len(data) / 2, len(data) - 5} {
		c := append([]byte(nil), data...)
		c[i] ^= 0xFF
		if _, err := Decode(c); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: Decode = %v, want ErrCorrupt", i, err)
		}
	}
	if _, err := Decode(data[:20]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short Decode = %v, want ErrCorrupt", err)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	a, b := Encode(sample()), Encode(sample())
	if string(a) != string(b) {
		t.Fatal("two encodings of the same snapshot differ (map ordering leak)")
	}
}

func TestMemStoreLatest(t *testing.T) {
	st := NewMemStore()
	if _, err := st.Latest(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest on empty = %v, want ErrNotFound", err)
	}
	s1 := sample()
	if err := st.Save(s1); err != nil {
		t.Fatal(err)
	}
	s2 := sample()
	s2.Epoch = 4
	s2.Memory = []uint64{9}
	if err := st.Save(s2); err != nil {
		t.Fatal(err)
	}
	got, err := st.Latest(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 4 || len(got.Memory) != 1 || got.Memory[0] != 9 {
		t.Fatalf("Latest = %+v, want epoch 4", got)
	}
	if st.Saves(7) != 2 {
		t.Fatalf("Saves = %d, want 2", st.Saves(7))
	}
}

func TestMemStoreRejectsStaleEpoch(t *testing.T) {
	st := NewMemStore()
	s := sample()
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	stale := sample()
	stale.Epoch = 2
	if err := st.Save(stale); err == nil {
		t.Fatal("stale epoch accepted")
	}
	same := sample()
	if err := st.Save(same); err == nil {
		t.Fatal("duplicate epoch accepted")
	}
}

func TestMemStorePerOperatorIsolation(t *testing.T) {
	st := NewMemStore()
	a := sample()
	b := sample()
	b.Operator = 8
	b.Memory = []uint64{42}
	if err := st.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(b); err != nil {
		t.Fatal(err)
	}
	gotA, err := st.Latest(7)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := st.Latest(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA.Memory) != 4 || len(gotB.Memory) != 1 {
		t.Fatalf("cross-operator contamination: %v / %v", gotA.Memory, gotB.Memory)
	}
}

// TestQuickRoundTrip property-tests the codec with random snapshots.
func TestQuickRoundTrip(t *testing.T) {
	f := func(op uint32, epoch, lsn, rnd uint64, ts int64, mem []uint64, srcs []uint32, seqs []uint64) bool {
		if len(mem) > 64 {
			mem = mem[:64]
		}
		s := &Snapshot{
			Operator:       op,
			Epoch:          epoch,
			CoveredLSN:     lsn,
			RandState:      rnd,
			Timestamp:      ts,
			Memory:         mem,
			InputPositions: map[int]event.ID{},
		}
		n := len(srcs)
		if len(seqs) < n {
			n = len(seqs)
		}
		if n > 8 {
			n = 8
		}
		for i := 0; i < n; i++ {
			s.InputPositions[i] = event.ID{Source: event.SourceID(srcs[i]), Seq: event.Seq(seqs[i])}
		}
		got, err := Decode(Encode(s))
		if err != nil {
			return false
		}
		if got.Operator != s.Operator || got.Epoch != s.Epoch || got.Timestamp != s.Timestamp {
			return false
		}
		if len(got.Memory) != len(s.Memory) || len(got.InputPositions) != len(s.InputPositions) {
			return false
		}
		for i := range s.Memory {
			if got.Memory[i] != s.Memory[i] {
				return false
			}
		}
		for i, id := range s.InputPositions {
			if got.InputPositions[i] != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
