package profiler

import "sort"

// Summary is the compact, mergeable waste record: per-node ledgers plus
// the top-K conflict heatmap. It is the JSON body of /debug/speculation,
// the payload workers attach to STATUS heartbeats, and the unit the
// coordinator merges for /debug/cluster.
type Summary struct {
	Nodes            []NodeWaste  `json:"nodes"`
	Heatmap          []HeatEntry  `json:"heatmap"`
	CausedBy         []CauseEntry `json:"caused_by,omitempty"`
	WitnessesDropped uint64       `json:"witnesses_dropped,omitempty"`
}

// NodeWaste is one operator's ledger snapshot. Maps are keyed by abort
// cause ("conflict", "revoke", "replace", "error") or witness kind
// ("write-write", "validation", "cascade").
type NodeWaste struct {
	Node            string            `json:"node"`
	AbortedAttempts map[string]uint64 `json:"aborted_attempts,omitempty"`
	WastedCPUNs     map[string]int64  `json:"wasted_cpu_ns,omitempty"`
	AttemptCPUNs    int64             `json:"attempt_cpu_ns,omitempty"`
	Reexecutions    uint64            `json:"reexecutions,omitempty"`
	RevokedOutputs  uint64            `json:"revoked_outputs,omitempty"`
	Witnesses       map[string]uint64 `json:"witnesses,omitempty"`
	SpecDepthSum    int64             `json:"spec_depth_sum,omitempty"`
	SpecDepthMax    int64             `json:"spec_depth_max,omitempty"`
	SpecDepthCount  uint64            `json:"spec_depth_count,omitempty"`
}

// TotalAborted sums the node's aborted attempts over all causes.
func (nw NodeWaste) TotalAborted() uint64 {
	var n uint64
	for _, v := range nw.AbortedAttempts {
		n += v
	}
	return n
}

// TotalWastedNs sums the node's wasted CPU over all causes.
func (nw NodeWaste) TotalWastedNs() int64 {
	var ns int64
	for _, v := range nw.WastedCPUNs {
		ns += v
	}
	return ns
}

// HeatEntry is one heatmap cell: conflicts witnessed on one state bucket
// of one operator. Err is the space-saving overestimation bound.
type HeatEntry struct {
	Node  string `json:"node"`
	State string `json:"state"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// CauseEntry charges aborted attempts to the upstream operator that caused
// them (revoke/replacement origin).
type CauseEntry struct {
	Source string `json:"source"`
	Count  uint64 `json:"count"`
}

// TotalAborted sums aborted attempts across all nodes.
func (s *Summary) TotalAborted() uint64 {
	var n uint64
	for _, nw := range s.Nodes {
		n += nw.TotalAborted()
	}
	return n
}

// TotalWastedNs sums wasted CPU across all nodes.
func (s *Summary) TotalWastedNs() int64 {
	var ns int64
	for _, nw := range s.Nodes {
		ns += nw.TotalWastedNs()
	}
	return ns
}

// TotalAttemptNs sums attempt CPU across all nodes.
func (s *Summary) TotalAttemptNs() int64 {
	var ns int64
	for _, nw := range s.Nodes {
		ns += nw.AttemptCPUNs
	}
	return ns
}

// WastePct is wasted CPU as a percentage of all attempt CPU.
func (s *Summary) WastePct() float64 {
	total := s.TotalAttemptNs()
	if total <= 0 {
		return 0
	}
	return 100 * float64(s.TotalWastedNs()) / float64(total)
}

// NodeByName returns the ledger for one node, or nil.
func (s *Summary) NodeByName(name string) *NodeWaste {
	for i := range s.Nodes {
		if s.Nodes[i].Node == name {
			return &s.Nodes[i]
		}
	}
	return nil
}

// Merge folds several summaries (typically one per cluster partition) into
// one: node ledgers are summed by node name, heatmaps are re-sketched into
// a top-k of the given size, caused-by charges are summed.
func Merge(k int, parts ...*Summary) *Summary {
	if k <= 0 {
		k = 64
	}
	out := &Summary{}
	byNode := make(map[string]*NodeWaste)
	heat := newSpaceSaving(k)
	caused := make(map[string]uint64)
	var order []string
	for _, part := range parts {
		if part == nil {
			continue
		}
		out.WitnessesDropped += part.WitnessesDropped
		for _, nw := range part.Nodes {
			dst, ok := byNode[nw.Node]
			if !ok {
				cp := NodeWaste{
					Node:            nw.Node,
					AbortedAttempts: make(map[string]uint64),
					WastedCPUNs:     make(map[string]int64),
					Witnesses:       make(map[string]uint64),
				}
				byNode[nw.Node] = &cp
				dst = &cp
				order = append(order, nw.Node)
			}
			for c, v := range nw.AbortedAttempts {
				dst.AbortedAttempts[c] += v
			}
			for c, v := range nw.WastedCPUNs {
				dst.WastedCPUNs[c] += v
			}
			for c, v := range nw.Witnesses {
				dst.Witnesses[c] += v
			}
			dst.AttemptCPUNs += nw.AttemptCPUNs
			dst.Reexecutions += nw.Reexecutions
			dst.RevokedOutputs += nw.RevokedOutputs
			dst.SpecDepthSum += nw.SpecDepthSum
			dst.SpecDepthCount += nw.SpecDepthCount
			if nw.SpecDepthMax > dst.SpecDepthMax {
				dst.SpecDepthMax = nw.SpecDepthMax
			}
		}
		for _, he := range part.Heatmap {
			heat.add(heatKey{node: he.Node, state: he.State}, he.Count, he.Err)
		}
		for _, ce := range part.CausedBy {
			caused[ce.Source] += ce.Count
		}
	}
	sort.Strings(order)
	for _, name := range order {
		out.Nodes = append(out.Nodes, *byNode[name])
	}
	out.Heatmap = heat.entries()
	for src, n := range caused {
		out.CausedBy = append(out.CausedBy, CauseEntry{Source: src, Count: n})
	}
	sortCauseEntries(out.CausedBy)
	return out
}

func sortCauseEntries(es []CauseEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Source < es[j].Source
	})
}

// heatKey identifies a heatmap cell.
type heatKey struct {
	node, state string
}

// spaceSaving is the Metwally et al. space-saving top-k sketch: exactly k
// counters; an unseen key evicts the minimum and inherits its count as the
// overestimation error. Counts are exact for keys that never evicted.
type spaceSaving struct {
	k     int
	items map[heatKey]*ssItem
}

type ssItem struct {
	count, err uint64
}

func newSpaceSaving(k int) *spaceSaving {
	return &spaceSaving{k: k, items: make(map[heatKey]*ssItem, k)}
}

func (s *spaceSaving) add(key heatKey, n, err uint64) {
	if it, ok := s.items[key]; ok {
		it.count += n
		it.err += err
		return
	}
	if len(s.items) < s.k {
		s.items[key] = &ssItem{count: n, err: err}
		return
	}
	var minKey heatKey
	var min *ssItem
	for k, it := range s.items {
		if min == nil || it.count < min.count {
			minKey, min = k, it
		}
	}
	delete(s.items, minKey)
	s.items[key] = &ssItem{count: min.count + n, err: min.count + err}
}

// entries returns the sketch contents sorted by descending count.
func (s *spaceSaving) entries() []HeatEntry {
	out := make([]HeatEntry, 0, len(s.items))
	for key, it := range s.items {
		out = append(out, HeatEntry{Node: key.node, State: key.state, Count: it.count, Err: it.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].State < out[j].State
	})
	return out
}
