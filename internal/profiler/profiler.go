// Package profiler implements the speculation-waste profiler: per-operator
// ledgers of work discarded by aborts (CPU-ns by cause, re-executions,
// revoked-output fan-out, speculative depth at abort), STM conflict
// witnesses drained from per-node ring buffers and resolved to named state
// buckets, and a space-bounded mergeable top-K conflict heatmap. Workers
// ship Summary values in STATUS heartbeats; the coordinator merges them
// (docs/OBSERVABILITY.md, "Speculation-waste profiler").
//
// Recording paths are allocation-free: witnesses land in a fixed ring
// under a mutex, ledger updates are atomic adds. Resolution and heatmap
// maintenance happen only at Summary() time.
package profiler

import (
	"sync"
	"sync/atomic"
	"time"

	"streammine/internal/stm"
)

// Cause classifies why an attempt's work was wasted. The values mirror the
// engine's abort causes (core_aborts_total labels).
type Cause int

// Abort causes.
const (
	CauseConflict Cause = iota
	CauseRevoke
	CauseReplace
	CauseError
	numCauses
)

var causeNames = [numCauses]string{"conflict", "revoke", "replace", "error"}

// String returns the metric label for the cause.
func (c Cause) String() string {
	if c < 0 || c >= numCauses {
		return "unknown"
	}
	return causeNames[c]
}

// witness kinds tracked per node (indexes into the kinds array).
const numKinds = 3

// Config sizes a Profiler.
type Config struct {
	// RingSize is the per-node witness ring capacity (rounded up to a
	// power of two). Default 1024.
	RingSize int
	// HeatK bounds the conflict heatmap (top-K space-saving sketch).
	// Default 64.
	HeatK int
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 1024
	}
	if c.HeatK <= 0 {
		c.HeatK = 64
	}
	return c
}

// Profiler aggregates per-node waste ledgers and the conflict heatmap for
// one engine (one cluster partition).
type Profiler struct {
	cfg Config

	mu       sync.Mutex
	nodes    map[string]*NodeProfile
	order    []string
	heat     *spaceSaving
	causedBy map[string]uint64
	dropped  uint64
}

// New creates a profiler.
func New(cfg Config) *Profiler {
	cfg = cfg.withDefaults()
	return &Profiler{
		cfg:      cfg,
		nodes:    make(map[string]*NodeProfile),
		heat:     newSpaceSaving(cfg.HeatK),
		causedBy: make(map[string]uint64),
	}
}

// Node returns (creating on first use) the profile for the named operator.
func (p *Profiler) Node(name string) *NodeProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	if np, ok := p.nodes[name]; ok {
		return np
	}
	size := 1
	for size < p.cfg.RingSize {
		size <<= 1
	}
	np := &NodeProfile{name: name, ring: witnessRing{slots: make([]stm.ConflictWitness, size), mask: uint64(size - 1)}}
	p.nodes[name] = np
	p.order = append(p.order, name)
	return np
}

// CausedBy charges n aborted attempts to the upstream source whose revoke
// (or replacement) caused them — the "who caused the conflict" side of the
// ledger. source is an operator name, or "op<id>" for remote operators the
// local topology cannot name.
func (p *Profiler) CausedBy(source string, n uint64) {
	p.mu.Lock()
	p.causedBy[source] += n
	p.mu.Unlock()
}

// NodeProfile is one operator's waste ledger plus its witness ring. It
// implements stm.ConflictSink.
type NodeProfile struct {
	name string
	ring witnessRing

	// resolver maps an STM address to a state-bucket label. Installed by
	// the engine (state.AddrMap.Describe) and re-installed after recovery
	// memory swaps.
	resolver atomic.Value // func(stm.Addr) string

	kinds          [numKinds]atomic.Uint64
	attempts       [numCauses]atomic.Uint64
	wastedNs       [numCauses]atomic.Int64
	attemptNsTotal atomic.Int64
	reexecs        atomic.Uint64
	revokedOutputs atomic.Uint64
	specDepthSum   atomic.Int64
	specDepthMax   atomic.Int64
	specDepthN     atomic.Uint64
}

var _ stm.ConflictSink = (*NodeProfile)(nil)

// RecordConflict implements stm.ConflictSink: the witness lands in the
// fixed ring (allocation-free; oldest entries are overwritten).
func (np *NodeProfile) RecordConflict(w stm.ConflictWitness) {
	if k := int(w.Kind) - 1; k >= 0 && k < numKinds {
		np.kinds[k].Add(1)
	}
	np.ring.record(w)
}

// SetResolver installs the address-to-state-label resolver.
func (np *NodeProfile) SetResolver(fn func(stm.Addr) string) {
	np.resolver.Store(fn)
}

// AttemptCPU accounts the CPU time of one execution attempt (wasted or
// not); the denominator of the waste percentage.
func (np *NodeProfile) AttemptCPU(d time.Duration) {
	np.attemptNsTotal.Add(d.Nanoseconds())
}

// AbortedAttempt charges one aborted attempt: its cause, the CPU burned by
// the attempt, and the node's speculative depth at abort time.
func (np *NodeProfile) AbortedAttempt(cause Cause, cpu time.Duration, specDepth int64) {
	if cause < 0 || cause >= numCauses {
		cause = CauseError
	}
	np.attempts[cause].Add(1)
	np.wastedNs[cause].Add(cpu.Nanoseconds())
	np.specDepthSum.Add(specDepth)
	np.specDepthN.Add(1)
	for {
		cur := np.specDepthMax.Load()
		if specDepth <= cur || np.specDepthMax.CompareAndSwap(cur, specDepth) {
			return
		}
	}
}

// Reexec counts one re-execution dispatched after an abort.
func (np *NodeProfile) Reexec() { np.reexecs.Add(1) }

// RevokedOutputs counts outputs retracted because this node's task aborted
// after speculative sends (the downstream fan-out of the waste).
func (np *NodeProfile) RevokedOutputs(n int) {
	if n > 0 {
		np.revokedOutputs.Add(uint64(n))
	}
}

// Ledger accessors (metrics CounterFuncs read these).

// AbortedAttempts returns the aborted-attempt count for a cause.
func (np *NodeProfile) AbortedAttempts(c Cause) uint64 { return np.attempts[c].Load() }

// WastedSeconds returns the wasted CPU seconds for a cause.
func (np *NodeProfile) WastedSeconds(c Cause) float64 {
	return float64(np.wastedNs[c].Load()) / 1e9
}

// WastedNs returns the wasted CPU nanoseconds for a cause.
func (np *NodeProfile) WastedNs(c Cause) int64 { return np.wastedNs[c].Load() }

// AttemptNs returns the total CPU nanoseconds across all attempts (the
// waste-percentage denominator).
func (np *NodeProfile) AttemptNs() int64 { return np.attemptNsTotal.Load() }

// Reexecs returns the re-execution count.
func (np *NodeProfile) Reexecs() uint64 { return np.reexecs.Load() }

// RevokedOutputCount returns the revoked-output fan-out total.
func (np *NodeProfile) RevokedOutputCount() uint64 { return np.revokedOutputs.Load() }

// Witnesses returns the witness count for an stm.ConflictKind.
func (np *NodeProfile) Witnesses(k stm.ConflictKind) uint64 {
	if i := int(k) - 1; i >= 0 && i < numKinds {
		return np.kinds[i].Load()
	}
	return 0
}

// drainInto folds the node's pending witnesses into the heatmap, resolving
// addresses to state labels. Returns the number of overwritten (lost)
// witnesses since the last drain.
func (np *NodeProfile) drainInto(heat *spaceSaving) uint64 {
	resolve, _ := np.resolver.Load().(func(stm.Addr) string)
	return np.ring.drain(func(w stm.ConflictWitness) {
		label := "unresolved"
		if resolve != nil {
			label = resolve(w.Addr)
		}
		heat.add(heatKey{node: np.name, state: label}, 1, 0)
	})
}

// snapshot renders the ledger as a NodeWaste record.
func (np *NodeProfile) snapshot() NodeWaste {
	nw := NodeWaste{
		Node:            np.name,
		AbortedAttempts: make(map[string]uint64),
		WastedCPUNs:     make(map[string]int64),
		Witnesses:       make(map[string]uint64),
		AttemptCPUNs:    np.attemptNsTotal.Load(),
		Reexecutions:    np.reexecs.Load(),
		RevokedOutputs:  np.revokedOutputs.Load(),
		SpecDepthSum:    np.specDepthSum.Load(),
		SpecDepthMax:    np.specDepthMax.Load(),
		SpecDepthCount:  np.specDepthN.Load(),
	}
	for c := Cause(0); c < numCauses; c++ {
		if n := np.attempts[c].Load(); n != 0 {
			nw.AbortedAttempts[c.String()] = n
		}
		if ns := np.wastedNs[c].Load(); ns != 0 {
			nw.WastedCPUNs[c.String()] = ns
		}
	}
	for k := stm.ConflictWriteWrite; k <= stm.ConflictCascade; k++ {
		if n := np.Witnesses(k); n != 0 {
			nw.Witnesses[k.String()] = n
		}
	}
	return nw
}

// Summary drains every node's witness ring into the heatmap and returns
// the profiler's current state as a compact, mergeable record (served at
// /debug/speculation and shipped in cluster STATUS heartbeats).
func (p *Profiler) Summary() *Summary {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Summary{}
	for _, name := range p.order {
		np := p.nodes[name]
		p.dropped += np.drainInto(p.heat)
		s.Nodes = append(s.Nodes, np.snapshot())
	}
	s.Heatmap = p.heat.entries()
	for src, n := range p.causedBy {
		s.CausedBy = append(s.CausedBy, CauseEntry{Source: src, Count: n})
	}
	sortCauseEntries(s.CausedBy)
	s.WitnessesDropped = p.dropped
	return s
}

// witnessRing is a fixed-capacity overwrite ring. record is allocation-
// free; drain replays everything recorded since the previous drain (or the
// last len(slots) records, whichever is fewer).
type witnessRing struct {
	mu      sync.Mutex
	slots   []stm.ConflictWitness
	mask    uint64
	next    uint64
	drained uint64
}

func (r *witnessRing) record(w stm.ConflictWitness) {
	r.mu.Lock()
	r.slots[r.next&r.mask] = w
	r.next++
	r.mu.Unlock()
}

func (r *witnessRing) drain(fn func(stm.ConflictWitness)) (dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	from := r.drained
	if r.next > uint64(len(r.slots)) && from < r.next-uint64(len(r.slots)) {
		from = r.next - uint64(len(r.slots))
		dropped = from - r.drained
	}
	for i := from; i < r.next; i++ {
		fn(r.slots[i&r.mask])
	}
	r.drained = r.next
	return dropped
}
