package profiler

import (
	"encoding/json"
	"testing"
	"time"

	"streammine/internal/stm"
)

func TestLedgerAndSummary(t *testing.T) {
	p := New(Config{RingSize: 8, HeatK: 4})
	np := p.Node("sketch-op")
	np.SetResolver(func(a stm.Addr) string {
		if a == 3 {
			return "sketch[3]"
		}
		return "other"
	})
	for i := 0; i < 5; i++ {
		np.RecordConflict(stm.ConflictWitness{Kind: stm.ConflictWriteWrite, Addr: 3, VictimID: uint64(i)})
	}
	np.RecordConflict(stm.ConflictWitness{Kind: stm.ConflictCascade, Addr: 9})
	np.AttemptCPU(10 * time.Millisecond)
	np.AbortedAttempt(CauseConflict, 4*time.Millisecond, 2)
	np.AbortedAttempt(CauseRevoke, 1*time.Millisecond, 5)
	np.Reexec()
	np.RevokedOutputs(3)
	p.CausedBy("upstream", 2)

	s := p.Summary()
	nw := s.NodeByName("sketch-op")
	if nw == nil {
		t.Fatal("node missing from summary")
	}
	if nw.AbortedAttempts["conflict"] != 1 || nw.AbortedAttempts["revoke"] != 1 {
		t.Fatalf("aborted attempts = %v", nw.AbortedAttempts)
	}
	if nw.WastedCPUNs["conflict"] != 4e6 {
		t.Fatalf("wasted conflict ns = %d", nw.WastedCPUNs["conflict"])
	}
	if nw.AttemptCPUNs != 1e7 {
		t.Fatalf("attempt ns = %d", nw.AttemptCPUNs)
	}
	if nw.Reexecutions != 1 || nw.RevokedOutputs != 3 {
		t.Fatalf("reexec/revoked = %d/%d", nw.Reexecutions, nw.RevokedOutputs)
	}
	if nw.SpecDepthMax != 5 || nw.SpecDepthSum != 7 || nw.SpecDepthCount != 2 {
		t.Fatalf("spec depth = %+v", nw)
	}
	if nw.Witnesses["write-write"] != 5 || nw.Witnesses["cascade"] != 1 {
		t.Fatalf("witnesses = %v", nw.Witnesses)
	}
	if len(s.Heatmap) == 0 || s.Heatmap[0].State != "sketch[3]" || s.Heatmap[0].Count != 5 {
		t.Fatalf("heatmap = %+v", s.Heatmap)
	}
	if s.WastePct() != 50 {
		t.Fatalf("waste pct = %f, want 50", s.WastePct())
	}
	if len(s.CausedBy) != 1 || s.CausedBy[0].Source != "upstream" {
		t.Fatalf("caused by = %+v", s.CausedBy)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("summary must be JSON-serializable: %v", err)
	}
}

func TestRingOverwriteCountsDropped(t *testing.T) {
	p := New(Config{RingSize: 4, HeatK: 8})
	np := p.Node("n")
	np.SetResolver(func(a stm.Addr) string { return "s" })
	for i := 0; i < 10; i++ {
		np.RecordConflict(stm.ConflictWitness{Kind: stm.ConflictValidation, Addr: stm.Addr(i)})
	}
	s := p.Summary()
	if s.WitnessesDropped != 6 {
		t.Fatalf("dropped = %d, want 6", s.WitnessesDropped)
	}
	if len(s.Heatmap) != 1 || s.Heatmap[0].Count != 4 {
		t.Fatalf("heatmap = %+v", s.Heatmap)
	}
}

// TestRecordConflictZeroAlloc: witness recording must not allocate even
// with profiling on — it runs on STM abort paths.
func TestRecordConflictZeroAlloc(t *testing.T) {
	np := New(Config{RingSize: 64}).Node("n")
	w := stm.ConflictWitness{Kind: stm.ConflictWriteWrite, Addr: 1, VictimID: 2, OwnerID: 3}
	if allocs := testing.AllocsPerRun(200, func() { np.RecordConflict(w) }); allocs != 0 {
		t.Fatalf("RecordConflict allocated %.1f per run, want 0", allocs)
	}
}

func TestSpaceSavingEvictsMin(t *testing.T) {
	s := newSpaceSaving(2)
	s.add(heatKey{"a", "x"}, 10, 0)
	s.add(heatKey{"b", "y"}, 1, 0)
	s.add(heatKey{"c", "z"}, 1, 0) // evicts b, inherits its count as err
	es := s.entries()
	if len(es) != 2 {
		t.Fatalf("entries = %+v", es)
	}
	if es[0].Node != "a" || es[0].Count != 10 {
		t.Fatalf("top entry = %+v", es[0])
	}
	if es[1].Node != "c" || es[1].Count != 2 || es[1].Err != 1 {
		t.Fatalf("evictor entry = %+v", es[1])
	}
}

func TestMerge(t *testing.T) {
	a := &Summary{
		Nodes: []NodeWaste{{
			Node:            "op",
			AbortedAttempts: map[string]uint64{"conflict": 3},
			WastedCPUNs:     map[string]int64{"conflict": 100},
			AttemptCPUNs:    1000,
			SpecDepthMax:    4,
		}},
		Heatmap:  []HeatEntry{{Node: "op", State: "s[0]", Count: 3}},
		CausedBy: []CauseEntry{{Source: "src", Count: 1}},
	}
	b := &Summary{
		Nodes: []NodeWaste{{
			Node:            "op",
			AbortedAttempts: map[string]uint64{"conflict": 2, "revoke": 1},
			WastedCPUNs:     map[string]int64{"conflict": 50},
			AttemptCPUNs:    500,
			SpecDepthMax:    2,
		}},
		Heatmap:          []HeatEntry{{Node: "op", State: "s[0]", Count: 2}, {Node: "op", State: "s[1]", Count: 1}},
		CausedBy:         []CauseEntry{{Source: "src", Count: 4}},
		WitnessesDropped: 7,
	}
	m := Merge(8, a, b, nil)
	nw := m.NodeByName("op")
	if nw == nil || nw.AbortedAttempts["conflict"] != 5 || nw.AbortedAttempts["revoke"] != 1 {
		t.Fatalf("merged node = %+v", nw)
	}
	if nw.WastedCPUNs["conflict"] != 150 || nw.AttemptCPUNs != 1500 || nw.SpecDepthMax != 4 {
		t.Fatalf("merged node = %+v", nw)
	}
	if len(m.Heatmap) != 2 || m.Heatmap[0].State != "s[0]" || m.Heatmap[0].Count != 5 {
		t.Fatalf("merged heatmap = %+v", m.Heatmap)
	}
	if m.CausedBy[0].Count != 5 || m.WitnessesDropped != 7 {
		t.Fatalf("merged = %+v", m)
	}
	if m.TotalAborted() != 6 {
		t.Fatalf("total aborted = %d", m.TotalAborted())
	}
}
