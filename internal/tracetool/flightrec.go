package tracetool

import (
	"fmt"
	"io"
	"time"

	"streammine/internal/flightrec"
)

// WriteFlightRec renders flight-recorder dump files (the JSON snapshots a
// crashed or POSTed process left in its flightrec directory) as one
// merged, human-readable timeline. Each line shows the offset from the
// dump's first record, the originating process, the record kind and the
// detail, so the last seconds before a SIGKILL read like a story.
func WriteFlightRec(w io.Writer, paths ...string) error {
	type row struct {
		ts   int64
		proc string
		kind string
		text string
	}
	var rows []row
	for _, path := range paths {
		d, err := flightrec.ReadDump(path)
		if err != nil {
			return fmt.Errorf("flightrec: %s: %w", path, err)
		}
		fmt.Fprintf(w, "%s: proc %q, %d records total, %d in ring, written %s\n",
			path, d.Proc, d.Records, len(d.Entries), d.WrittenAt)
		for _, e := range d.Entries {
			rows = append(rows, row{ts: e.TSNs, proc: d.Proc, kind: e.Kind, text: e.Detail})
		}
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "no records")
		return nil
	}
	// Already per-dump ordered; merge-order across dumps by timestamp.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].ts < rows[j-1].ts; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	base := rows[0].ts
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%12s  %-12s %-9s %s\n",
			"+"+time.Duration(r.ts-base).Round(time.Microsecond).String(), r.proc, r.kind, r.text)
	}
	return nil
}
