package tracetool

import (
	"encoding/json"
	"io"
)

// chromeEvent is one record in the Chrome trace-event format, the JSON
// array understood by Perfetto (ui.perfetto.dev) and chrome://tracing.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the merged trace as Chrome trace-event JSON: one
// process track per tracing process, one thread track per graph node,
// critical-path steps as duration slices and every span as an instant
// event. Timestamps are rebased to the earliest span so the viewer opens
// at t=0.
func (s *Set) WriteChrome(w io.Writer) error {
	var base int64
	for i, sp := range s.Spans {
		if i == 0 || sp.TS < base {
			base = sp.TS
		}
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	pids := map[string]int{}
	tids := map[[2]string]int{}
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	track := func(proc, node string) (int, int) {
		if _, ok := pids[proc]; !ok {
			pids[proc] = len(pids) + 1
			name := proc
			if name == "" {
				name = "engine"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: pids[proc],
				Args: map[string]any{"name": name},
			})
		}
		key := [2]string{proc, node}
		if _, ok := tids[key]; !ok {
			tids[key] = len(tids) + 1
			name := node
			if name == "" {
				name = "(boundary)"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pids[proc], TID: tids[key],
				Args: map[string]any{"name": name},
			})
		}
		return pids[proc], tids[key]
	}

	// Critical-path steps as slices: the slice for a step starts at the
	// previous step's timestamp and ends at this one, on the track where
	// this phase ran — the viewer shows where each event's time went.
	for _, l := range s.Lineages() {
		for _, st := range l.CriticalPath() {
			if st.Delta <= 0 {
				continue
			}
			pid, tid := track(st.Proc, st.Node)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: st.Phase, Phase: "X",
				TS: us(st.TS - st.Delta.Nanoseconds()), Dur: float64(st.Delta.Nanoseconds()) / 1e3,
				PID: pid, TID: tid,
				Args: map[string]any{"trace": l.Trace},
			})
		}
	}
	// Every span (including aborts, revokes, epoch records) as an instant.
	for _, sp := range s.Spans {
		pid, tid := track(sp.Proc, sp.Node)
		args := map[string]any{}
		if sp.Trace != "" {
			args["trace"] = sp.Trace
		}
		if sp.Event != "" {
			args["event"] = sp.Event
		}
		if sp.Info != "" {
			args["info"] = sp.Info
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Phase, Phase: "i", TS: us(sp.TS),
			PID: pid, TID: tid, Scope: "t", Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
