package tracetool

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"streammine/internal/metrics"
)

// twoProcTrace builds a two-process trace for one event lineage crossing
// a bridge: ingress/exec/spec_out on w1, ingress/exec/commit/finalize/
// externalize on w2, with wall-clock-style timestamps.
func twoProcTrace(t *testing.T) (*File, *File) {
	t.Helper()
	var b1, b2 bytes.Buffer
	base := time.Now().UnixNano()
	mk := func(buf *bytes.Buffer, proc string, off int64, node, trace, event, phase, info string) {
		t.Helper()
		line, err := json.Marshal(metrics.Span{
			TS: base + off, Proc: proc, Node: node, Trace: trace, Event: event, Phase: phase, Info: info,
		})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	mk(&b1, "w1", 0, "", "", "", metrics.PhaseClock, "unix_ns=1 pid=10")
	mk(&b1, "w1", 5, "p0", "", "", metrics.PhaseEpoch, "partition=0 epoch=1 worker=w1 nodes=2")
	mk(&b1, "w1", 100, "src", "ab12", "1:7", metrics.PhaseIngress, "input=0 spec=false")
	mk(&b1, "w1", 200, "map", "ab12", "1:7", metrics.PhaseExec, "")
	mk(&b1, "w1", 300, "map", "ab12", "100:7", metrics.PhaseSpecOut, "from=1:7")
	mk(&b2, "w2", 10, "", "", "", metrics.PhaseClock, "unix_ns=11 pid=11")
	mk(&b2, "w2", 15, "p1", "", "", metrics.PhaseEpoch, "partition=1 epoch=1 worker=w2 nodes=1")
	mk(&b2, "w2", 400, "agg", "ab12", "100:7", metrics.PhaseIngress, "input=0 spec=true")
	mk(&b2, "w2", 500, "agg", "ab12", "100:7", metrics.PhaseExec, "")
	mk(&b2, "w2", 600, "agg", "ab12", "100:7", metrics.PhaseCommit, "")
	mk(&b2, "w2", 700, "agg", "ab12", "200:7", metrics.PhaseFinalize, "")
	mk(&b2, "w2", 800, "sink", "ab12", "200:7", metrics.PhaseExternalize, "")
	f1, err := Read(&b1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Read(&b2)
	if err != nil {
		t.Fatal(err)
	}
	return f1, f2
}

func TestMergeStitchesOneLineage(t *testing.T) {
	f1, f2 := twoProcTrace(t)
	set := Merge(f1, f2)
	lineages := set.Lineages()
	if len(lineages) != 1 {
		t.Fatalf("got %d lineages, want 1 (cross-process spans must stitch by trace id)", len(lineages))
	}
	l := lineages[0]
	if l.Trace != "ab12" {
		t.Fatalf("lineage trace = %q", l.Trace)
	}
	if len(l.Spans) != 8 {
		t.Fatalf("lineage has %d spans, want 8", len(l.Spans))
	}
	if !l.Complete() {
		t.Fatal("lineage with ingress+commit+externalize must be complete")
	}
	lat, ok := l.Latency()
	if !ok || lat != 700 {
		t.Fatalf("latency = %v ok=%v, want 700ns", lat, ok)
	}
	// Spans must be timeline-ordered across the two files.
	for i := 1; i < len(l.Spans); i++ {
		if l.Spans[i].TS < l.Spans[i-1].TS {
			t.Fatalf("merged spans out of order at %d", i)
		}
	}
	if errs := set.Validate(); len(errs) != 0 {
		t.Fatalf("valid trace reported violations: %v", errs)
	}
}

func TestCriticalPathAndReport(t *testing.T) {
	f1, f2 := twoProcTrace(t)
	set := Merge(f1, f2)
	l := set.Lineages()[0]
	steps := l.CriticalPath()
	if len(steps) != 8 {
		t.Fatalf("critical path has %d steps, want 8", len(steps))
	}
	var total time.Duration
	for _, st := range steps {
		total += st.Delta
	}
	if total != 700 {
		t.Fatalf("critical-path deltas sum to %v, want 700ns (first ingress to externalize)", total)
	}
	// The w1→w2 bridge hop is the 100ns delta into w2's ingress.
	if steps[3].Phase != metrics.PhaseIngress || steps[3].Proc != "w2" || steps[3].Delta != 100 {
		t.Fatalf("step 3 = %+v, want w2 ingress +100ns", steps[3])
	}

	rep := set.Analyze()
	if rep.Lineages != 1 || rep.Externalized != 1 || rep.Complete != 1 {
		t.Fatalf("report counts = %+v", rep)
	}
	if rep.E2E.Count != 1 || rep.E2E.Max != 700 {
		t.Fatalf("e2e stat = %+v", rep.E2E)
	}
	var sum bytes.Buffer
	rep.WriteSummary(&sum)
	for _, want := range []string{"externalized: 1", "ingress", "slowest lineage"} {
		if !strings.Contains(sum.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, sum.String())
		}
	}
}

func TestTornTailTolerated(t *testing.T) {
	f1, _ := twoProcTrace(t)
	var raw bytes.Buffer
	for _, sp := range f1.Spans {
		line, _ := json.Marshal(sp)
		raw.Write(line)
		raw.WriteByte('\n')
	}
	raw.WriteString(`{"ts_ns":123,"phase":"com`) // SIGKILL mid-write
	f, err := Read(&raw)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if !f.TornTail {
		t.Fatal("TornTail not flagged")
	}
	if len(f.Spans) != len(f1.Spans) {
		t.Fatalf("intact prefix lost: %d of %d spans", len(f.Spans), len(f1.Spans))
	}
	// A malformed line mid-file is corruption, not a tear.
	var bad bytes.Buffer
	bad.WriteString("not json\n")
	line, _ := json.Marshal(f1.Spans[0])
	bad.Write(line)
	bad.WriteByte('\n')
	if _, err := Read(&bad); err == nil {
		t.Fatal("mid-file corruption must error")
	}
}

func TestValidateFlagsOrphanAndZombie(t *testing.T) {
	base := time.Now().UnixNano()
	mk := func(off int64, proc, node, trace, phase, info string) metrics.Span {
		return metrics.Span{TS: base + off, Proc: proc, Node: node, Trace: trace, Phase: phase, Info: info}
	}
	// Externalize with no ingress anywhere: orphan lineage.
	orphan := &File{Spans: []metrics.Span{
		mk(0, "w1", "sink", "ff01", metrics.PhaseExternalize, ""),
	}}
	if errs := Merge(orphan).Validate(); len(errs) != 1 {
		t.Fatalf("orphan lineage: got %v", errs)
	}

	// w1 owned partition 0 at epoch 1; w2 took it over at epoch 2. A w1
	// span stamped after the takeover is a zombie write.
	zombie := &File{Spans: []metrics.Span{
		mk(0, "w1", "p0", "", metrics.PhaseEpoch, "partition=0 epoch=1 worker=w1"),
		mk(10, "w1", "src", "aa", metrics.PhaseIngress, ""),
		mk(20, "w1", "src", "aa", metrics.PhaseCommit, ""),
		mk(100, "w2", "p0", "", metrics.PhaseEpoch, "partition=0 epoch=2 worker=w2"),
		mk(150, "w1", "src", "bb", metrics.PhaseExec, ""), // after takeover
		mk(200, "w2", "src", "aa", metrics.PhaseIngress, ""),
	}}
	errs := Merge(zombie).Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "zombie") {
			found = true
		}
	}
	if !found {
		t.Fatalf("zombie span not flagged: %v", errs)
	}
}

func TestWriteChrome(t *testing.T) {
	f1, f2 := twoProcTrace(t)
	set := Merge(f1, f2)
	var out bytes.Buffer
	if err := set.WriteChrome(&out); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var procs, slices, instants int
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				procs++
			}
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	if procs != 2 {
		t.Fatalf("chrome trace names %d processes, want 2", procs)
	}
	if slices == 0 || instants == 0 {
		t.Fatalf("chrome trace has %d slices, %d instants; want both > 0", slices, instants)
	}
}

func TestLegacyUntracedGroupsByEvent(t *testing.T) {
	base := time.Now().UnixNano()
	f := &File{Spans: []metrics.Span{
		{TS: base, Node: "src", Event: "1:1", Phase: metrics.PhaseIngress},
		{TS: base + 1, Node: "src", Event: "1:1", Phase: metrics.PhaseCommit},
		{TS: base + 2, Node: "src", Event: "1:2", Phase: metrics.PhaseIngress},
	}}
	lineages := Merge(f).Lineages()
	if len(lineages) != 2 {
		t.Fatalf("legacy grouping produced %d lineages, want 2", len(lineages))
	}
}
