package tracetool

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streammine/internal/metrics"
	"streammine/internal/profiler"
)

// wasteTrace builds a synthetic two-lineage trace: lineage "hotpath"
// suffers two conflict aborts and a revoke on node "agg"; lineage "calm"
// commits cleanly on node "map".
func wasteTrace(t *testing.T) *Set {
	t.Helper()
	var b bytes.Buffer
	mk := func(off int64, node, trace, event, phase, info string) {
		t.Helper()
		line, err := json.Marshal(metrics.Span{
			TS: off, Proc: "w1", Node: node, Trace: trace, Event: event, Phase: phase, Info: info,
		})
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	mk(100, "src", "hotpath", "1:1", metrics.PhaseIngress, "input=0 spec=false")
	mk(200, "agg", "hotpath", "1:1", metrics.PhaseExec, "")
	mk(300, "agg", "hotpath", "1:1", metrics.PhaseAbort, "cause=conflict")
	mk(400, "agg", "hotpath", "1:1", metrics.PhaseAbort, "cause=conflict")
	mk(450, "agg", "hotpath", "100:1", metrics.PhaseRevoke, "")
	mk(500, "agg", "hotpath", "1:1", metrics.PhaseCommit, "")
	mk(110, "src", "calm", "1:2", metrics.PhaseIngress, "input=0 spec=false")
	mk(210, "map", "calm", "1:2", metrics.PhaseExec, "")
	mk(310, "map", "calm", "1:2", metrics.PhaseCommit, "")
	f, err := Read(&b)
	if err != nil {
		t.Fatal(err)
	}
	return Merge(f)
}

func TestWasteReportJoinsLedger(t *testing.T) {
	set := wasteTrace(t)
	sum := &profiler.Summary{
		Nodes: []profiler.NodeWaste{{
			Node:            "agg",
			AbortedAttempts: map[string]uint64{"conflict": 2},
			WastedCPUNs:     map[string]int64{"conflict": 4_000_000},
			AttemptCPUNs:    20_000_000,
			Reexecutions:    1,
			RevokedOutputs:  1,
			Witnesses:       map[string]uint64{"write-write": 2},
		}},
		Heatmap: []profiler.HeatEntry{{Node: "agg", State: "sum", Count: 2}},
	}
	r := set.Waste(sum, 10)

	// Per-operator rows: agg carries the aborts and the joined ledger;
	// trace abort totals must match the ledger's conflict count.
	var agg *OperatorWaste
	for i := range r.Operators {
		if r.Operators[i].Node == "agg" {
			agg = &r.Operators[i]
		}
	}
	if agg == nil {
		t.Fatalf("no operator row for agg: %+v", r.Operators)
	}
	if agg.Aborts["conflict"] != 2 || agg.TotalAborts() != 2 {
		t.Errorf("agg aborts = %+v, want 2 conflicts", agg.Aborts)
	}
	if agg.Revokes != 1 {
		t.Errorf("agg revokes = %d, want 1", agg.Revokes)
	}
	if agg.Ledger == nil || agg.Ledger.AbortedAttempts["conflict"] != 2 {
		t.Errorf("agg ledger not joined: %+v", agg.Ledger)
	}
	if uint64(agg.TotalAborts()) != agg.Ledger.TotalAborted() {
		t.Errorf("trace aborts %d != ledger aborts %d", agg.TotalAborts(), agg.Ledger.TotalAborted())
	}

	// Lineage ranking: only the churned lineage appears, and it leads.
	if len(r.Lineages) != 1 {
		t.Fatalf("lineages = %+v, want only hotpath", r.Lineages)
	}
	lw := r.Lineages[0]
	if lw.Trace != "hotpath" || lw.Aborts != 2 || lw.Revokes != 1 {
		t.Errorf("top lineage = %+v, want hotpath with 2 aborts, 1 revoke", lw)
	}
	if lw.SpanNs != 400 {
		t.Errorf("lineage span = %d ns, want 400", lw.SpanNs)
	}

	// Rendered report names the operator, the hot state and the lineage.
	var out bytes.Buffer
	r.WriteReport(&out)
	text := out.String()
	for _, want := range []string{"agg", "sum", "hotpath", "Conflict heatmap", "Top wasted lineages"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestWasteWithoutSummary exercises the trace-only path: rows come from
// abort/revoke spans alone and no ledger columns render.
func TestWasteWithoutSummary(t *testing.T) {
	set := wasteTrace(t)
	r := set.Waste(nil, 0)
	if len(r.Operators) != 1 || r.Operators[0].Node != "agg" {
		t.Fatalf("operators = %+v, want only agg (calm lineage has no waste)", r.Operators)
	}
	var out bytes.Buffer
	r.WriteReport(&out)
	if strings.Contains(out.String(), "wasted-cpu-ms") {
		t.Error("trace-only report must not render ledger columns")
	}
}

// TestReadSummary accepts both a bare summary and a /debug/cluster body
// wrapping it in a "waste" field.
func TestReadSummary(t *testing.T) {
	sum := &profiler.Summary{Nodes: []profiler.NodeWaste{{
		Node:            "agg",
		AbortedAttempts: map[string]uint64{"conflict": 3},
	}}}
	dir := t.TempDir()

	bare := filepath.Join(dir, "bare.json")
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bare, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wrapped := filepath.Join(dir, "cluster.json")
	data, err = json.Marshal(map[string]any{"workers": []string{"w1"}, "waste": sum})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wrapped, data, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{bare, wrapped} {
		got, err := ReadSummary(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got == nil || got.NodeByName("agg") == nil || got.NodeByName("agg").AbortedAttempts["conflict"] != 3 {
			t.Fatalf("%s: round-trip mismatch: %+v", path, got)
		}
	}
}
