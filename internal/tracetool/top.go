package tracetool

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"streammine/internal/health"
	"streammine/internal/recovery"
)

// FetchHealth pulls one /debug/health snapshot from a coordinator's
// debug address ("host:port" or a full URL).
func FetchHealth(addr string) (*health.View, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/debug/health"
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var v health.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("%s: decode: %w", url, err)
	}
	return &v, nil
}

// WriteHealth renders one health snapshot as the `tracetool top` frame:
// the SLO verdict line, the per-operator table with budget attribution,
// then any backpressure root-cause chains and straggler flags.
func WriteHealth(w io.Writer, v *health.View) {
	if v.SLO.TargetMs > 0 {
		verdict := "within budget"
		if v.SLO.Violated {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "SLO p99 %.1fms / target %.1fms — %s", v.SLO.ObservedP99Ms, v.SLO.TargetMs, verdict)
	} else {
		fmt.Fprintf(w, "end-to-end p99 %.1fms (no SLO declared)", v.SLO.ObservedP99Ms)
	}
	if v.SLO.DominantHop != "" {
		fmt.Fprintf(w, "; dominant hop %s", v.SLO.DominantHop)
	}
	if len(v.SLO.CriticalPath) > 0 {
		fmt.Fprintf(w, "\ncritical path: %s", strings.Join(v.SLO.CriticalPath, " → "))
	}
	fmt.Fprintln(w)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tWORKER\tRATE/S\tP50MS\tP99MS\tBUDGET%\tDEPTH\tFLAGS")
	for _, op := range v.Operators {
		var flags []string
		if op.Dominant {
			flags = append(flags, "dominant")
		}
		if op.Blocked {
			flags = append(flags, "blocked")
		}
		if op.Congested {
			flags = append(flags, "congested")
		}
		depth := fmt.Sprintf("%d", op.MailboxDepth)
		if op.MailboxCap > 0 {
			depth = fmt.Sprintf("%d/%d", op.MailboxDepth, op.MailboxCap)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.1f\t%.1f\t%.1f\t%s\t%s\n",
			op.Node, op.Worker, op.RateEventsPerSec, op.P50Ms, op.P99Ms,
			op.BudgetSharePct, depth, strings.Join(flags, ","))
	}
	_ = tw.Flush()

	for _, c := range v.Backpressure {
		fmt.Fprintf(w, "backpressure: %s (root %s on %s): %s\n",
			strings.Join(c.Path, " ← "), c.Root, c.RootWorker, c.Reason)
	}
	for _, s := range v.Stragglers {
		fmt.Fprintf(w, "straggler: %s — %s\n", s.Worker, s.Reason)
	}
	if len(v.Workers) > 0 {
		var parts []string
		for _, wk := range v.Workers {
			parts = append(parts, fmt.Sprintf("%s (%d parts, %.0f ev/s)", wk.Worker, wk.Partitions, wk.RateEventsPerSec))
		}
		sort.Strings(parts)
		fmt.Fprintf(w, "workers: %s\n", strings.Join(parts, ", "))
	}
	if lr := v.LastRecovery; lr != nil {
		state := "in progress"
		if lr.Complete {
			state = "complete"
		}
		var phases []string
		for _, ph := range recovery.Phases {
			if ms, ok := lr.PhaseMs[ph]; ok {
				phases = append(phases, fmt.Sprintf("%s %.1f", ph, ms))
			}
		}
		fmt.Fprintf(w, "last recovery: epoch %d, victim %q — %.1fms (%s), dominant %s [%s]\n",
			lr.Epoch, lr.Victim, lr.TotalMs, state, lr.DominantPhase, strings.Join(phases, " | "))
	}
}

// RunTop is the `tracetool top` live mode: it polls a coordinator's
// /debug/health every interval and re-renders the frame, or renders a
// single frame when once is set.
func RunTop(w io.Writer, addr string, interval time.Duration, once bool) error {
	if interval <= 0 {
		interval = time.Second
	}
	for {
		v, err := FetchHealth(addr)
		if err != nil {
			return err
		}
		if !once {
			fmt.Fprint(w, "\x1b[2J\x1b[H") // clear screen, home cursor
			fmt.Fprintf(w, "streammine top — %s — %s\n\n", addr, time.Now().Format("15:04:05"))
		}
		WriteHealth(w, v)
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}
