package tracetool

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"streammine/internal/recovery"
)

// FetchRecovery pulls the /debug/recovery anatomy report from a
// coordinator's debug address ("host:port" or a full URL).
func FetchRecovery(addr string) (*recovery.Report, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/debug/recovery"
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var rep recovery.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: decode: %w", url, err)
	}
	return &rep, nil
}

// LoadRecovery reads a saved /debug/recovery report (the campaign
// runner's per-cell recovery.json artifact).
func LoadRecovery(path string) (*recovery.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep recovery.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: decode: %w", path, err)
	}
	return &rep, nil
}

// barWidth is the waterfall's character budget per incident window.
const barWidth = 40

// WriteRecovery renders the anatomy report as per-incident phase
// waterfalls: every span on its own row, offset and scaled within the
// incident window, with attribution (bytes, records, events, drops), a
// per-phase duration summary naming the dominant phase, and a timeline
// gap check.
func WriteRecovery(w io.Writer, rep *recovery.Report) {
	if rep == nil || len(rep.Incidents) == 0 {
		fmt.Fprintln(w, "no recovery incidents recorded")
		return
	}
	for i, inc := range rep.Incidents {
		if i > 0 {
			fmt.Fprintln(w)
		}
		writeIncident(w, inc)
	}
}

func writeIncident(w io.Writer, inc recovery.Incident) {
	state := "in progress"
	if inc.Complete {
		state = "complete"
	}
	fmt.Fprintf(w, "incident epoch %d — victim %q, partitions %v — %.1fms (%s)\n",
		inc.Epoch, inc.Victim, inc.Partitions, inc.TotalMs, state)

	end := inc.EndNs
	for _, s := range inc.Spans {
		if s.EndNs > end {
			end = s.EndNs
		}
	}
	window := end - inc.StartNs
	if window <= 0 {
		window = 1
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE\tPART\tSTART\tDUR(MS)\tTIMELINE\tDETAIL")
	for _, s := range inc.Spans {
		part := "—"
		if s.Partition >= 0 {
			part = fmt.Sprintf("p%d", s.Partition)
		}
		dur := s.DurationMs()
		durText := fmt.Sprintf("%.1f", dur)
		if s.EndNs == 0 {
			durText = "open"
		}
		fmt.Fprintf(tw, "%s\t%s\t+%.1f\t%s\t%s\t%s\n",
			s.Phase, part, float64(s.StartNs-inc.StartNs)/1e6, durText,
			bar(s.StartNs-inc.StartNs, s.EndNs-s.StartNs, window),
			spanDetail(s))
	}
	_ = tw.Flush()

	var phases []string
	for _, ph := range recovery.Phases {
		if ms, ok := inc.PhaseMs[ph]; ok {
			phases = append(phases, fmt.Sprintf("%s %.1f", ph, ms))
		}
	}
	fmt.Fprintf(w, "phases: %s", strings.Join(phases, " | "))
	if inc.DominantPhase != "" {
		fmt.Fprintf(w, " — dominant %s (%.1fms)", inc.DominantPhase, inc.PhaseMs[inc.DominantPhase])
	}
	fmt.Fprintln(w)
	if inc.ReplayEventsPerSec > 0 {
		fmt.Fprintf(w, "replay: %d events (%d dedup drops) at %.0f events/sec; restore: %d checkpoint bytes, %d log records\n",
			inc.ReplayEvents, inc.ReplayDrops, inc.ReplayEventsPerSec, inc.RestoreBytes, inc.LogRecords)
	}
	// Handoff jitter between phases (ASSIGN delivery, goroutine wakeup)
	// is not a coverage hole; the verdict flags real instrumentation
	// gaps, so sub-slack totals still count as gap-free.
	gapMs, largest := timelineGaps(inc, end)
	slack := 0.01 * float64(window) / 1e6
	if slack < 5 {
		slack = 5
	}
	switch {
	case gapMs == 0:
		fmt.Fprintln(w, "timeline: gap-free")
	case gapMs < slack:
		fmt.Fprintf(w, "timeline: gap-free (%.1fms handoff jitter)\n", gapMs)
	default:
		fmt.Fprintf(w, "timeline: %.1fms uncovered (largest gap %.1fms)\n", gapMs, largest)
	}
}

func bar(offset, dur, window int64) string {
	if dur < 0 {
		dur = 0
	}
	start := int(offset * barWidth / window)
	width := int(dur * barWidth / window)
	if start >= barWidth {
		start = barWidth - 1
	}
	if width < 1 {
		width = 1
	}
	if start+width > barWidth {
		width = barWidth - start
	}
	return strings.Repeat("·", start) + strings.Repeat("█", width) +
		strings.Repeat("·", barWidth-start-width)
}

func spanDetail(s recovery.Span) string {
	var parts []string
	if s.Bytes > 0 {
		parts = append(parts, fmt.Sprintf("%dB ckpt", s.Bytes))
	}
	if s.Records > 0 {
		parts = append(parts, fmt.Sprintf("%d rec", s.Records))
	}
	if s.Events > 0 {
		parts = append(parts, fmt.Sprintf("%d ev", s.Events))
	}
	if s.Drops > 0 {
		parts = append(parts, fmt.Sprintf("%d drop", s.Drops))
	}
	if s.Worker != "" {
		parts = append(parts, s.Worker)
	}
	return strings.Join(parts, ", ")
}

// timelineGaps measures how much of the incident window no phase span
// covers: the total uncovered time and the single largest gap, in ms.
func timelineGaps(inc recovery.Incident, end int64) (total, largest float64) {
	type iv struct{ a, b int64 }
	var ivs []iv
	for _, s := range inc.Spans {
		if s.EndNs > s.StartNs {
			ivs = append(ivs, iv{s.StartNs, s.EndNs})
		}
	}
	if len(ivs) == 0 || end <= inc.StartNs {
		return 0, 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	cursor := inc.StartNs
	var totalNs, largestNs int64
	for _, v := range ivs {
		if v.a > cursor {
			gap := v.a - cursor
			totalNs += gap
			if gap > largestNs {
				largestNs = gap
			}
		}
		if v.b > cursor {
			cursor = v.b
		}
	}
	if end > cursor {
		gap := end - cursor
		totalNs += gap
		if gap > largestNs {
			largestNs = gap
		}
	}
	return float64(totalNs) / 1e6, float64(largestNs) / 1e6
}

// RunRecovery is the `tracetool recovery` driver: it renders the
// anatomy report from a live coordinator (-addr) or from a saved
// recovery.json artifact.
func RunRecovery(w io.Writer, addr, path string) error {
	var rep *recovery.Report
	var err error
	switch {
	case path != "":
		rep, err = LoadRecovery(path)
	case addr != "":
		rep, err = FetchRecovery(addr)
	default:
		return fmt.Errorf("tracetool recovery: need -addr or a recovery.json path")
	}
	if err != nil {
		return err
	}
	WriteRecovery(w, rep)
	return nil
}
