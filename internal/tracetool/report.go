package tracetool

import (
	"fmt"
	"io"
	"sort"
	"time"

	"streammine/internal/metrics"
)

// forwardPhases are the lifecycle phases that constitute forward progress
// toward externalization, in canonical order. Abort and revoke spans are
// not steps on the critical path — but the time speculation wasted on a
// revoked branch is not hidden either: it surfaces as a longer delta into
// the next forward span.
var forwardPhases = map[string]bool{
	metrics.PhaseIngress:     true,
	metrics.PhaseExec:        true,
	metrics.PhaseSpecOut:     true,
	metrics.PhaseFinalOut:    true,
	metrics.PhaseFinalize:    true,
	metrics.PhaseCommit:      true,
	metrics.PhaseExternalize: true,
}

// Step is one hop on a lineage's critical path: reaching Phase at Node
// cost Delta beyond the previous step.
type Step struct {
	Phase string
	Node  string
	Proc  string
	Delta time.Duration
	TS    int64
}

// CriticalPath reduces a lineage to its forward chain: the timestamp-
// ordered forward-progress spans from first ingress to last span, each
// step carrying the latency it added. The result answers "where did this
// event's latency go" — the sum of deltas is the lineage's span of time.
func (l *Lineage) CriticalPath() []Step {
	start := -1
	for i, sp := range l.Spans {
		if sp.Phase == metrics.PhaseIngress {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	var steps []Step
	prev := l.Spans[start].TS
	for _, sp := range l.Spans[start:] {
		if !forwardPhases[sp.Phase] {
			continue
		}
		steps = append(steps, Step{
			Phase: sp.Phase, Node: sp.Node, Proc: sp.Proc,
			Delta: time.Duration(sp.TS - prev), TS: sp.TS,
		})
		prev = sp.TS
	}
	return steps
}

// Latency returns the lineage's end-to-end latency — first ingress to
// last externalization — and whether it was externalized at all.
func (l *Lineage) Latency() (time.Duration, bool) {
	var ingress int64 = -1
	var extern int64 = -1
	for _, sp := range l.Spans {
		switch sp.Phase {
		case metrics.PhaseIngress:
			if ingress < 0 {
				ingress = sp.TS
			}
		case metrics.PhaseExternalize:
			extern = sp.TS
		}
	}
	if ingress < 0 || extern < 0 {
		return 0, false
	}
	return time.Duration(extern - ingress), true
}

// PhaseStat aggregates the critical-path deltas attributed to one phase.
type PhaseStat struct {
	Phase string
	Count uint64
	Total time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Report is the aggregate latency analysis of a merged trace.
type Report struct {
	// Lineages is the number of event lineages seen.
	Lineages int
	// Externalized counts lineages with an externalize span.
	Externalized int
	// Complete counts lineages passing Lineage.Complete.
	Complete int
	// Phases is the per-phase critical-path breakdown, ordered by total
	// time attributed (dominant phase first).
	Phases []PhaseStat
	// E2E aggregates end-to-end latency over externalized lineages.
	E2E PhaseStat
	// Slowest is the critical path of the worst externalized lineage.
	Slowest []Step
	// SlowestTrace identifies it.
	SlowestTrace string
}

// Analyze builds the latency report for the merged trace.
func (s *Set) Analyze() *Report {
	lineages := s.Lineages()
	rep := &Report{Lineages: len(lineages)}
	perPhase := make(map[string]*metrics.HDR)
	e2e := metrics.NewHDR()
	var worst time.Duration = -1
	for _, l := range lineages {
		if l.Complete() {
			rep.Complete++
		}
		for _, st := range l.CriticalPath() {
			h := perPhase[st.Phase]
			if h == nil {
				h = metrics.NewHDR()
				perPhase[st.Phase] = h
			}
			h.Record(st.Delta)
		}
		if lat, ok := l.Latency(); ok {
			rep.Externalized++
			e2e.Record(lat)
			if lat > worst {
				worst = lat
				rep.Slowest = l.CriticalPath()
				rep.SlowestTrace = l.Trace
			}
		}
	}
	for phase, h := range perPhase {
		rep.Phases = append(rep.Phases, phaseStat(phase, h))
	}
	sort.Slice(rep.Phases, func(i, j int) bool { return rep.Phases[i].Total > rep.Phases[j].Total })
	rep.E2E = phaseStat("end_to_end", e2e)
	return rep
}

func phaseStat(name string, h *metrics.HDR) PhaseStat {
	return PhaseStat{
		Phase: name,
		Count: h.Count(),
		Total: time.Duration(h.Sum()),
		P50:   h.QuantileDuration(0.5),
		P95:   h.QuantileDuration(0.95),
		P99:   h.QuantileDuration(0.99),
		Max:   time.Duration(h.Max()),
	}
}

// WriteSummary renders the report as a human-readable table.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "lineages: %d  externalized: %d  complete: %d (%.1f%%)\n",
		r.Lineages, r.Externalized, r.Complete, pct(r.Complete, r.Lineages))
	fmt.Fprintf(w, "%-14s %8s %12s %10s %10s %10s %10s\n",
		"phase", "count", "total", "p50", "p95", "p99", "max")
	row := func(st PhaseStat) {
		fmt.Fprintf(w, "%-14s %8d %12v %10v %10v %10v %10v\n",
			st.Phase, st.Count, st.Total.Round(time.Microsecond),
			st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond),
			st.P99.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
	for _, st := range r.Phases {
		row(st)
	}
	if r.E2E.Count > 0 {
		row(r.E2E)
	}
	if len(r.Slowest) > 0 {
		fmt.Fprintf(w, "slowest lineage (trace %s):\n", r.SlowestTrace)
		for _, st := range r.Slowest {
			loc := st.Node
			if st.Proc != "" {
				loc = st.Proc + "/" + st.Node
			}
			fmt.Fprintf(w, "  +%-12v %-12s %s\n", st.Delta.Round(time.Microsecond), st.Phase, loc)
		}
	}
}

func pct(n, of int) float64 {
	if of == 0 {
		return 100
	}
	return 100 * float64(n) / float64(of)
}
