// Package tracetool merges and analyzes the JSONL lifecycle traces
// written by metrics.Tracer: it stitches per-process files into one
// timeline, groups spans into per-event lineages by trace id, computes
// per-phase latency breakdowns and critical paths, validates structural
// invariants (no orphan lineages, no spans from dead partition epochs),
// and exports Chrome trace-event JSON loadable in Perfetto.
//
// The command-line front end is cmd/tracetool; the analysis lives here so
// tests (and the chaos suite) can drive it in-process.
package tracetool

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"streammine/internal/metrics"
)

// File is one parsed per-process trace file.
type File struct {
	// Name is the source path (or a caller-chosen label).
	Name string
	// Spans are the parsed records, including clock and epoch headers.
	Spans []metrics.Span
	// TornTail reports that the final line was incomplete JSON — the
	// signature of a process killed mid-write (SIGKILL). Like the WAL's
	// torn tail, it is tolerated: the intact prefix is the trace.
	TornTail bool
}

// ReadFile parses one JSONL trace file. A malformed final line marks the
// file TornTail; a malformed line anywhere else is an error (the file is
// not a trace, or was corrupted beyond a crash tear).
func ReadFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	file, err := Read(f)
	if file != nil {
		file.Name = path
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return file, nil
}

// Read parses a JSONL trace stream (see ReadFile for tear semantics).
func Read(r io.Reader) (*File, error) {
	out := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pendingErr error
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return out, pendingErr
		}
		var s metrics.Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			pendingErr = fmt.Errorf("line %d: %w", lineNo, err)
			continue
		}
		out.Spans = append(out.Spans, s)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if pendingErr != nil {
		out.TornTail = true
	}
	return out, nil
}

// Epoch is one parsed PhaseEpoch record: a partition (re)build on a
// process. Offline analysis uses the records to attribute spans to
// partition incarnations after failovers.
type Epoch struct {
	Partition int
	Epoch     int
	Worker    string
	Proc      string
	TS        int64
}

// Set is a merged multi-process trace.
type Set struct {
	// Spans is the merged timeline, sorted by timestamp (stable, so
	// same-timestamp spans keep their file order). Clock and epoch
	// records are included.
	Spans []metrics.Span
	// Files are the inputs, in merge order.
	Files []*File
	// TornTails counts inputs that ended in a torn line.
	TornTails int
}

// Merge stitches per-process files into one timeline. Tracer timestamps
// are wall-clock unix nanoseconds anchored per process (the PhaseClock
// header), so sorting by TS aligns the files up to host clock skew.
func Merge(files ...*File) *Set {
	s := &Set{Files: files}
	for _, f := range files {
		s.Spans = append(s.Spans, f.Spans...)
		if f.TornTail {
			s.TornTails++
		}
	}
	sort.SliceStable(s.Spans, func(i, j int) bool { return s.Spans[i].TS < s.Spans[j].TS })
	return s
}

// Load reads and merges trace files in one step.
func Load(paths ...string) (*Set, error) {
	files := make([]*File, 0, len(paths))
	for _, p := range paths {
		f, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return Merge(files...), nil
}

// Epochs extracts the partition-epoch records from the merged timeline.
func (s *Set) Epochs() []Epoch {
	var out []Epoch
	for _, sp := range s.Spans {
		if sp.Phase != metrics.PhaseEpoch {
			continue
		}
		e := Epoch{Proc: sp.Proc, TS: sp.TS, Partition: -1, Epoch: -1}
		for _, kv := range strings.Fields(sp.Info) {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				continue
			}
			switch k {
			case "partition":
				fmt.Sscanf(v, "%d", &e.Partition)
			case "epoch":
				fmt.Sscanf(v, "%d", &e.Epoch)
			case "worker":
				e.Worker = v
			}
		}
		if e.Partition >= 0 && e.Epoch >= 0 {
			out = append(out, e)
		}
	}
	return out
}

// Lineage is every span of one event lineage — an event's journey from
// source ingress through speculation, commit, and externalization,
// possibly spanning several processes — in timestamp order.
type Lineage struct {
	// Trace is the lowercase-hex trace id, or "event:<id>" for legacy
	// untraced spans grouped by event identity.
	Trace string
	Spans []metrics.Span
}

// lifecyclePhase reports whether a phase belongs to an event lifecycle
// (as opposed to process-level clock/epoch records).
func lifecyclePhase(p string) bool {
	return p != metrics.PhaseClock && p != metrics.PhaseEpoch
}

// Lineages groups the lifecycle spans by trace id, falling back to event
// identity for untraced (legacy) spans so old traces still group
// per-event within a process. Lineages are returned sorted by first
// timestamp; spans within each stay timeline-ordered.
func (s *Set) Lineages() []*Lineage {
	byKey := make(map[string]*Lineage)
	var order []*Lineage
	for _, sp := range s.Spans {
		if !lifecyclePhase(sp.Phase) {
			continue
		}
		key := sp.Trace
		if key == "" {
			if sp.Event == "" {
				continue
			}
			key = "event:" + sp.Event
		}
		l := byKey[key]
		if l == nil {
			l = &Lineage{Trace: key}
			byKey[key] = l
			order = append(order, l)
		}
		l.Spans = append(l.Spans, sp)
	}
	return order
}

// Has reports whether the lineage contains at least one span of the
// given phase.
func (l *Lineage) Has(phase string) bool {
	for _, sp := range l.Spans {
		if sp.Phase == phase {
			return true
		}
	}
	return false
}

// Complete reports whether the lineage is reconstructable end to end: it
// begins at an ingress and, if it was externalized, also records the
// commit that ordered it. Replayed lineages count — the re-execution
// re-records every phase under the same trace id.
func (l *Lineage) Complete() bool {
	if !l.Has(metrics.PhaseIngress) {
		return false
	}
	if l.Has(metrics.PhaseExternalize) && !l.Has(metrics.PhaseCommit) {
		return false
	}
	return true
}
