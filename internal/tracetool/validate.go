package tracetool

import (
	"fmt"

	"streammine/internal/metrics"
)

// Validate checks the merged trace's structural invariants and returns
// every violation found:
//
//   - every externalized lineage must be reconstructable (Complete): its
//     ingress and ordering commit must be present somewhere in the merged
//     files — a missing piece means a process's trace was lost, not torn;
//   - no span may be attributable to a dead partition epoch: once another
//     process records epoch e' for a partition, the process that owned an
//     earlier epoch was declared dead by the failure detector, so any
//     span it stamps after the takeover is a zombie write (its engine
//     outlived its lease);
//   - files that ended mid-line (TornTails) are tolerated — a SIGKILL
//     tears at most the final record — but more than one torn file per
//     process crash indicates collection problems worth surfacing.
//
// A nil return means the trace is sound.
func (s *Set) Validate() []error {
	var errs []error
	for _, l := range s.Lineages() {
		if l.Has(metrics.PhaseExternalize) && !l.Complete() {
			errs = append(errs, fmt.Errorf("lineage %s: externalized but incomplete (missing ingress or commit)", l.Trace))
		}
	}
	errs = append(errs, s.validateEpochs()...)
	return errs
}

// validateEpochs flags spans written by a process after another process
// superseded its partition epoch. The coordinator only reassigns a
// partition when the owning worker is declared dead, so the superseded
// process must be silent from the successor's epoch record onward.
func (s *Set) validateEpochs() []error {
	type owner struct {
		proc string
		ep   int
		ts   int64
	}
	latest := make(map[int]owner) // partition → latest epoch record
	deadAt := make(map[string]int64)
	for _, e := range s.Epochs() {
		cur, ok := latest[e.Partition]
		if ok && e.Epoch > cur.ep && e.Proc != cur.proc {
			// cur.proc lost the partition to e.Proc: it was declared dead
			// no later than the takeover.
			if t, dead := deadAt[cur.proc]; !dead || e.TS < t {
				deadAt[cur.proc] = e.TS
			}
		}
		if !ok || e.Epoch >= cur.ep {
			latest[e.Partition] = owner{proc: e.Proc, ep: e.Epoch, ts: e.TS}
		}
	}
	var errs []error
	for _, sp := range s.Spans {
		t, dead := deadAt[sp.Proc]
		if dead && sp.TS > t && lifecyclePhase(sp.Phase) {
			errs = append(errs, fmt.Errorf("zombie span: proc %q recorded %s at %d after its epoch was superseded at %d",
				sp.Proc, sp.Phase, sp.TS, t))
		}
	}
	return errs
}
