package tracetool

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"streammine/internal/metrics"
	"streammine/internal/profiler"
)

// OperatorWaste aggregates the wasted work visible in a trace for one
// operator: abort spans by cause and revoked outputs, optionally joined
// with the operator's profiler ledger (CPU, re-executions, witnesses).
type OperatorWaste struct {
	Node    string            `json:"node"`
	Aborts  map[string]uint64 `json:"aborts"`
	Revokes uint64            `json:"revokes,omitempty"`
	// Ledger is the matching per-operator profiler record when a waste
	// summary (from /debug/speculation or /debug/cluster) was joined.
	Ledger *profiler.NodeWaste `json:"ledger,omitempty"`
}

// TotalAborts sums the operator's abort spans over all causes.
func (ow OperatorWaste) TotalAborts() uint64 {
	var n uint64
	for _, v := range ow.Aborts {
		n += v
	}
	return n
}

// LineageWaste scores one event lineage by the rollback churn it
// suffered: abort and revoke spans along its journey, and its wall span.
type LineageWaste struct {
	Trace   string   `json:"trace"`
	Aborts  int      `json:"aborts"`
	Revokes int      `json:"revokes,omitempty"`
	Nodes   []string `json:"nodes"`
	SpanNs  int64    `json:"span_ns"`
}

// WasteReport is the joined waste view: per-operator breakdowns from the
// trace (optionally merged with profiler ledgers) plus the most-wasted
// lineages.
type WasteReport struct {
	Operators []OperatorWaste `json:"operators"`
	Lineages  []LineageWaste  `json:"lineages,omitempty"`
	// Summary is the joined profiler summary, echoed for heatmap access.
	Summary *profiler.Summary `json:"summary,omitempty"`
}

// abortCause extracts the cause from an abort span's info ("cause=...").
func abortCause(info string) string {
	for _, kv := range strings.Fields(info) {
		if v, ok := strings.CutPrefix(kv, "cause="); ok {
			return v
		}
	}
	return "unknown"
}

// Waste builds the waste report: per-operator abort/revoke counts from
// the merged trace, the top wasted lineages (ranked by abort count, then
// revokes, then span), and — when sum is non-nil — each operator's
// profiler ledger joined by node name.
func (s *Set) Waste(sum *profiler.Summary, top int) *WasteReport {
	if top <= 0 {
		top = 10
	}
	byNode := make(map[string]*OperatorWaste)
	var order []string
	opOf := func(node string) *OperatorWaste {
		ow := byNode[node]
		if ow == nil {
			ow = &OperatorWaste{Node: node, Aborts: make(map[string]uint64)}
			byNode[node] = ow
			order = append(order, node)
		}
		return ow
	}
	for _, sp := range s.Spans {
		switch sp.Phase {
		case metrics.PhaseAbort:
			opOf(sp.Node).Aborts[abortCause(sp.Info)]++
		case metrics.PhaseRevoke:
			opOf(sp.Node).Revokes++
		}
	}
	// Join the profiler ledgers by node name; ledger-only operators (no
	// abort span survived sampling) still get a row.
	if sum != nil {
		for i := range sum.Nodes {
			nw := &sum.Nodes[i]
			opOf(nw.Node).Ledger = nw
		}
	}

	var lineages []LineageWaste
	for _, l := range s.Lineages() {
		lw := LineageWaste{Trace: l.Trace}
		seen := make(map[string]bool)
		for _, sp := range l.Spans {
			switch sp.Phase {
			case metrics.PhaseAbort:
				lw.Aborts++
			case metrics.PhaseRevoke:
				lw.Revokes++
			}
			if sp.Node != "" && !seen[sp.Node] {
				seen[sp.Node] = true
				lw.Nodes = append(lw.Nodes, sp.Node)
			}
		}
		if lw.Aborts == 0 && lw.Revokes == 0 {
			continue
		}
		lw.SpanNs = l.Spans[len(l.Spans)-1].TS - l.Spans[0].TS
		lineages = append(lineages, lw)
	}
	sort.Slice(lineages, func(i, j int) bool {
		if lineages[i].Aborts != lineages[j].Aborts {
			return lineages[i].Aborts > lineages[j].Aborts
		}
		if lineages[i].Revokes != lineages[j].Revokes {
			return lineages[i].Revokes > lineages[j].Revokes
		}
		if lineages[i].SpanNs != lineages[j].SpanNs {
			return lineages[i].SpanNs > lineages[j].SpanNs
		}
		return lineages[i].Trace < lineages[j].Trace
	})
	if len(lineages) > top {
		lineages = lineages[:top]
	}

	r := &WasteReport{Lineages: lineages, Summary: sum}
	sort.Strings(order)
	for _, node := range order {
		r.Operators = append(r.Operators, *byNode[node])
	}
	return r
}

// ReadSummary parses a profiler summary JSON file (saved from
// /debug/speculation or /debug/cluster — the /debug/cluster body's
// "waste" field is also accepted).
func ReadSummary(path string) (*profiler.Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Accept either a bare Summary or a wrapper with a "waste" field.
	var wrap struct {
		Waste *profiler.Summary `json:"waste"`
	}
	if err := json.Unmarshal(data, &wrap); err == nil && wrap.Waste != nil {
		return wrap.Waste, nil
	}
	var s profiler.Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// wasteCauses is the fixed column order of the per-operator table; trace
// causes outside this list (future additions) fold into the total only.
var wasteCauses = []string{"conflict", "revoke", "replacement", "error"}

// WriteReport renders the waste report as aligned text tables.
func (r *WasteReport) WriteReport(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Speculation waste by operator")
	header := "operator\taborts\t" + strings.Join(wasteCauses, "\t") + "\trevokes"
	if r.Summary != nil {
		header += "\twasted-cpu-ms\treexecs\trevoked-outs"
	}
	fmt.Fprintln(tw, header)
	for _, ow := range r.Operators {
		row := fmt.Sprintf("%s\t%d", ow.Node, ow.TotalAborts())
		for _, c := range wasteCauses {
			row += fmt.Sprintf("\t%d", ow.Aborts[c])
		}
		row += fmt.Sprintf("\t%d", ow.Revokes)
		if r.Summary != nil {
			if nw := ow.Ledger; nw != nil {
				row += fmt.Sprintf("\t%.2f\t%d\t%d",
					float64(nw.TotalWastedNs())/1e6, nw.Reexecutions, nw.RevokedOutputs)
			} else {
				row += "\t-\t-\t-"
			}
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()

	if r.Summary != nil {
		fmt.Fprintf(w, "\nLedger: %.1f%% of attempt CPU wasted (%.2f ms of %.2f ms)\n",
			r.Summary.WastePct(),
			float64(r.Summary.TotalWastedNs())/1e6,
			float64(r.Summary.TotalAttemptNs())/1e6)
		if len(r.Summary.Heatmap) > 0 {
			fmt.Fprintln(w, "\nConflict heatmap (operator, state bucket)")
			ht := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(ht, "operator\tstate\tconflicts\t±err")
			for _, he := range r.Summary.Heatmap {
				fmt.Fprintf(ht, "%s\t%s\t%d\t%d\n", he.Node, he.State, he.Count, he.Err)
			}
			ht.Flush()
		}
	}

	if len(r.Lineages) > 0 {
		fmt.Fprintln(w, "\nTop wasted lineages")
		lt := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(lt, "trace\taborts\trevokes\tspan-ms\tpath")
		for _, lw := range r.Lineages {
			fmt.Fprintf(lt, "%s\t%d\t%d\t%.2f\t%s\n",
				lw.Trace, lw.Aborts, lw.Revokes,
				float64(lw.SpanNs)/1e6, strings.Join(lw.Nodes, "→"))
		}
		lt.Flush()
	}
}
