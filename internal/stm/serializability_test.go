package stm

import (
	"errors"
	"testing"

	"streammine/internal/detrand"
)

// recordedOp is one operation a transaction performed, with the value it
// observed (reads) or wrote.
type recordedOp struct {
	isWrite bool
	addr    Addr
	value   uint64
}

// TestSerializabilityRandomOpenChains builds random batches of
// transactions that all stay open (pre-commit) while later ones execute —
// maximal speculative read-from/overwrite chaining — commits them in
// timestamp order, and then checks the history against a sequential
// model: replaying the committed transactions in timestamp order, every
// recorded read must match the model state at that point.
func TestSerializabilityRandomOpenChains(t *testing.T) {
	const (
		rounds    = 60
		addrSpace = 8
		txPerRun  = 12
		opsPerTx  = 6
	)
	rng := detrand.New(12345)
	for round := 0; round < rounds; round++ {
		mem := NewMemory(addrSpace)
		type txRec struct {
			tx     *Tx
			ops    []recordedOp
			failed bool
		}
		var txs []*txRec
		// Execute all transactions, leaving each open.
		for i := 0; i < txPerRun; i++ {
			rec := &txRec{tx: mem.Begin(int64(i + 1))}
			for o := 0; o < opsPerTx; o++ {
				addr := Addr(rng.Intn(addrSpace))
				if rng.Intn(2) == 0 {
					v, err := rec.tx.Read(addr)
					if err != nil {
						rec.failed = true
						break
					}
					rec.ops = append(rec.ops, recordedOp{addr: addr, value: v})
				} else {
					v := rng.Uint64() % 1000
					if err := rec.tx.Write(addr, v); err != nil {
						rec.failed = true
						break
					}
					rec.ops = append(rec.ops, recordedOp{isWrite: true, addr: addr, value: v})
				}
			}
			if !rec.failed {
				if err := rec.tx.Complete(); err != nil {
					rec.failed = true
				}
			}
			if rec.failed {
				rec.tx.Abort()
			}
			txs = append(txs, rec)
		}
		// Randomly abort a few open transactions (cascades apply).
		for _, rec := range txs {
			if !rec.failed && rng.Intn(6) == 0 {
				rec.tx.Abort()
			}
		}
		// Commit the rest in timestamp order; deps must already be
		// committed (earlier ts), so ErrDepsOpen cannot occur here.
		for _, rec := range txs {
			if rec.failed || rec.tx.Status() == StatusAborted {
				continue
			}
			if err := rec.tx.Commit(); err != nil {
				if errors.Is(err, ErrConflict) {
					continue // cascade got it between our check and commit
				}
				if errors.Is(err, ErrDepsOpen) {
					t.Fatalf("round %d: ErrDepsOpen in ts-order commit", round)
				}
				t.Fatalf("round %d: commit: %v", round, err)
			}
		}
		// Model replay: committed transactions in ts order.
		model := make([]uint64, addrSpace)
		for i, rec := range txs {
			if rec.tx.Status() != StatusCommitted {
				continue
			}
			for _, op := range rec.ops {
				if op.isWrite {
					model[op.addr] = op.value
					continue
				}
				if model[op.addr] != op.value {
					t.Fatalf("round %d tx %d: read of %d observed %d, serial model has %d",
						round, i, op.addr, op.value, model[op.addr])
				}
			}
		}
		for a := 0; a < addrSpace; a++ {
			got, err := mem.ReadCommitted(Addr(a))
			if err != nil {
				t.Fatal(err)
			}
			if got != model[a] {
				t.Fatalf("round %d: final memory[%d] = %d, model %d", round, a, got, model[a])
			}
		}
	}
}

// TestCascadeConsistencyNoDanglingReads verifies that no COMMITTED
// transaction ever read data from an ABORTED one: build a chain, abort the
// head, and check every survivor.
func TestCascadeConsistencyNoDanglingReads(t *testing.T) {
	rng := detrand.New(777)
	for round := 0; round < 40; round++ {
		mem := NewMemory(4)
		var all []*Tx
		for i := 0; i < 8; i++ {
			tx := mem.Begin(int64(i + 1))
			ok := true
			for o := 0; o < 3; o++ {
				addr := Addr(rng.Intn(4))
				if rng.Intn(2) == 0 {
					if _, err := tx.Read(addr); err != nil {
						ok = false
						break
					}
				} else if err := tx.Write(addr, rng.Uint64()); err != nil {
					ok = false
					break
				}
			}
			if ok && tx.Complete() == nil {
				all = append(all, tx)
			} else {
				tx.Abort()
			}
		}
		if len(all) == 0 {
			continue
		}
		victim := all[int(rng.Intn(len(all)))]
		victim.Abort()
		for _, tx := range all {
			if tx == victim {
				continue
			}
			err := tx.Commit()
			switch {
			case err == nil, errors.Is(err, ErrConflict):
				// Committed (independent) or cascaded (dependent): both fine.
			case errors.Is(err, ErrDepsOpen):
				// A dep earlier in `all` also cascaded; skip this tx.
				tx.Abort()
			default:
				t.Fatalf("round %d: commit: %v", round, err)
			}
		}
		// The victim's buffered writes must not be visible.
		if victim.Status() != StatusAborted {
			t.Fatal("victim not aborted")
		}
	}
}
