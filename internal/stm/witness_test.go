package stm

import (
	"sync"
	"testing"
)

// collectSink records every witness for assertions.
type collectSink struct {
	mu sync.Mutex
	ws []ConflictWitness
}

func (s *collectSink) RecordConflict(w ConflictWitness) {
	s.mu.Lock()
	s.ws = append(s.ws, w)
	s.mu.Unlock()
}

func (s *collectSink) byKind(k ConflictKind) []ConflictWitness {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ConflictWitness
	for _, w := range s.ws {
		if w.Kind == k {
			out = append(out, w)
		}
	}
	return out
}

// TestWitnessWriteWrite: two active writers colliding on an address yield a
// write-write witness naming the address, the victim and the survivor.
func TestWitnessWriteWrite(t *testing.T) {
	sink := &collectSink{}
	m := NewMemory(16, WithConflictSink(sink))
	older := m.Begin(1)
	newer := m.Begin(2)
	if err := older.Write(3, 10); err != nil {
		t.Fatalf("older write: %v", err)
	}
	if err := newer.Write(3, 20); err != ErrConflict {
		t.Fatalf("newer write: got %v, want ErrConflict", err)
	}
	ws := sink.byKind(ConflictWriteWrite)
	if len(ws) != 1 {
		t.Fatalf("write-write witnesses: got %d, want 1", len(ws))
	}
	w := ws[0]
	if w.Addr != 3 || w.VictimID != newer.ID() || w.OwnerID != older.ID() {
		t.Fatalf("witness = %+v, want addr=3 victim=%d owner=%d", w, newer.ID(), older.ID())
	}
}

// TestWitnessValidation: a committed overwrite between read and validation
// produces a validation witness for the stale address.
func TestWitnessValidation(t *testing.T) {
	sink := &collectSink{}
	m := NewMemory(16, WithConflictSink(sink))
	reader := m.Begin(1)
	if _, err := reader.Read(5); err != nil {
		t.Fatalf("read: %v", err)
	}
	writer := m.Begin(2)
	if err := writer.Write(5, 42); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := writer.Complete(); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := reader.Complete(); err != ErrConflict {
		t.Fatalf("reader complete: got %v, want ErrConflict", err)
	}
	ws := sink.byKind(ConflictValidation)
	if len(ws) != 1 {
		t.Fatalf("validation witnesses: got %d, want 1", len(ws))
	}
	if w := ws[0]; w.Addr != 5 || w.VictimID != reader.ID() {
		t.Fatalf("witness = %+v, want addr=5 victim=%d", w, reader.ID())
	}
}

// TestWitnessCascade: aborting an open transaction cascades to its
// speculative reader with a witness naming the dependency address and the
// culprit.
func TestWitnessCascade(t *testing.T) {
	sink := &collectSink{}
	m := NewMemory(16, WithConflictSink(sink))
	producer := m.Begin(1)
	if err := producer.Write(7, 99); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := producer.Complete(); err != nil {
		t.Fatalf("complete: %v", err)
	}
	consumer := m.Begin(2)
	if v, err := consumer.Read(7); err != nil || v != 99 {
		t.Fatalf("speculative read: %d, %v", v, err)
	}
	producer.Abort()
	ws := sink.byKind(ConflictCascade)
	if len(ws) != 1 {
		t.Fatalf("cascade witnesses: got %d, want 1", len(ws))
	}
	w := ws[0]
	if w.Addr != 7 || w.VictimID != consumer.ID() || w.OwnerID != producer.ID() {
		t.Fatalf("witness = %+v, want addr=7 victim=%d owner=%d", w, consumer.ID(), producer.ID())
	}
	if err := consumer.checkRunnable(); err != ErrConflict {
		t.Fatalf("consumer should be doomed, checkRunnable = %v", err)
	}
}

// TestConflictFreePathRecordsNothing: a conflict-free workload must never
// invoke the sink — witness recording lives only on failure paths.
func TestConflictFreePathRecordsNothing(t *testing.T) {
	sink := &collectSink{}
	m := NewMemory(64, WithConflictSink(sink))
	for i := int64(0); i < 50; i++ {
		tx := m.Begin(i)
		if _, err := tx.Read(Addr(i % 8)); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := tx.Write(Addr(i%8), uint64(i)); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := tx.Complete(); err != nil {
			t.Fatalf("complete: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.ws) != 0 {
		t.Fatalf("conflict-free run recorded %d witnesses, want 0", len(sink.ws))
	}
}

// TestValidatePathZeroAlloc proves the profiling-off validate/extend path
// allocates nothing: the only addition for witnessing is the m.sink != nil
// check at the failure returns.
func TestValidatePathZeroAlloc(t *testing.T) {
	m := NewMemory(64)
	for i := Addr(0); i < 8; i++ {
		if err := m.WriteDirect(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tx := m.Begin(1)
	for i := Addr(0); i < 8; i++ {
		if _, err := tx.Read(i); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if !tx.validateReads() {
			t.Fatal("validation unexpectedly failed")
		}
	}); allocs != 0 {
		t.Fatalf("validateReads allocated %.1f per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if !tx.extendSnapshot() {
			t.Fatal("extend unexpectedly failed")
		}
	}); allocs != 0 {
		t.Fatalf("extendSnapshot allocated %.1f per run, want 0", allocs)
	}
}

// BenchmarkCommitPath is the regression baseline for the STM commit path
// (docs/OBSERVABILITY.md: "with profiling disabled, no measurable
// regression"). Run with -benchmem to compare allocations across commits.
func BenchmarkCommitPath(b *testing.B) {
	m := NewMemory(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := m.Begin(int64(i))
		if _, err := tx.Read(1); err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(1, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Complete(); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
