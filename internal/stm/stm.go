// Package stm implements the modified word-based software transactional
// memory at the heart of the paper (§3, §5): a lock-array STM in the style
// of Felber/Fetzer/Riegel (PPoPP'08) extended with *speculation support*:
//
//   - a transaction that has finished executing but is not yet authorized
//     to commit (its logging is not stable, or it consumed speculative
//     input events) stays OPEN in a pre-commit state, keeping its entries
//     in the lock array;
//   - later transactions may read or overwrite the buffered values of an
//     open transaction, becoming *dependent* on it: they can only commit
//     after it, and if it aborts they abort too (cascading abort);
//   - commits inside one Memory are issued by the engine in event-
//     timestamp order, and a transaction can be paused, revalidated and
//     committed by a different thread than the one that executed it.
//
// The paper instruments C code at compile time (TANGER) so that raw loads
// and stores are intercepted. Here the transactional heap is explicit: a
// Memory is a flat array of 64-bit words, and operators access it only
// through Tx.Read / Tx.Write. The lock-array semantics — buffered writes,
// per-entry versioned locks, read-set validation, false conflicts on hash
// collisions — are the same (see DESIGN.md §2 for the substitution note).
package stm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Addr is the index of a word in a Memory.
type Addr uint32

// Common STM errors. ErrConflict doubles as the "you have been killed"
// signal: the transaction must be aborted and re-executed.
var (
	// ErrConflict reports that the transaction lost a conflict (or was
	// killed by a cascading abort) and must abort and re-execute.
	ErrConflict = errors.New("stm: conflict")
	// ErrDepsOpen reports that Commit was called while a dependency is
	// still open; the caller must retry once the dependency commits.
	ErrDepsOpen = errors.New("stm: dependencies still open")
	// ErrInvalidState reports an operation incompatible with the
	// transaction's current status (e.g. Write after Complete).
	ErrInvalidState = errors.New("stm: invalid transaction state")
	// ErrOutOfMemory reports that Alloc exhausted the Memory's capacity.
	ErrOutOfMemory = errors.New("stm: out of transactional memory")
	// ErrBadAddr reports an access outside the allocated range.
	ErrBadAddr = errors.New("stm: address out of range")
)

// Status is the lifecycle state of a transaction.
type Status int32

// Transaction lifecycle. Active transactions are executing; Killed ones
// are doomed but their goroutine has not yet noticed; Completed ones are
// the paper's "open" pre-commit state.
const (
	StatusActive Status = iota + 1
	StatusKilled
	StatusCompleted
	StatusCommitted
	StatusAborted
)

// String names the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusKilled:
		return "killed"
	case StatusCompleted:
		return "completed"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}

// ConflictPolicy selects which of two actively conflicting transactions is
// aborted.
type ConflictPolicy int

// Conflict policies. The paper aborts the transaction of the event that
// arrived last (AbortNewest, the default); AbortOldest is the ablation.
const (
	AbortNewest ConflictPolicy = iota + 1
	AbortOldest
)

// ConflictKind classifies how a conflict witness was produced.
type ConflictKind uint8

// Witness kinds. WriteWrite witnesses come from two writers colliding on a
// lock-array entry, Validation ones from a failed read-set revalidation,
// Cascade ones from a dependency abort propagating to a dependent.
const (
	ConflictWriteWrite ConflictKind = iota + 1
	ConflictValidation
	ConflictCascade
)

// String names the kind for diagnostics and metric labels.
func (k ConflictKind) String() string {
	switch k {
	case ConflictWriteWrite:
		return "write-write"
	case ConflictValidation:
		return "validation"
	case ConflictCascade:
		return "cascade"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ConflictWitness is one attribution record: which address conflicted and
// which transactions were involved. Victim is the transaction that dies (or
// is doomed); Owner is the surviving or causing party, zero when unknown
// (e.g. a version change observed after the writer already unchained).
type ConflictWitness struct {
	Kind     ConflictKind
	Addr     Addr
	VictimID uint64
	OwnerID  uint64
	VictimTS int64
	OwnerTS  int64
}

// ConflictSink receives conflict witnesses. Implementations must be safe
// for concurrent use and must not block or allocate: they run on STM
// conflict/abort paths (internal/profiler's ring buffer qualifies).
type ConflictSink interface {
	RecordConflict(w ConflictWitness)
}

// lockState is one immutable snapshot of a lock-array entry. Entries are
// replaced wholesale via CAS, so readers always observe a consistent
// (version, owners) pair.
type lockState struct {
	// version is the commit clock value of the last committed write to any
	// address covered by this entry.
	version uint64
	// owners are the transactions currently registered as writers, in
	// acquisition order. Invariant: at most the last owner is Active; all
	// earlier owners are Completed (open). A transaction commits only when
	// it is the head of every chain it is in.
	owners []*Tx
}

var emptyLock = &lockState{}

// Stats are cumulative Memory counters.
type Stats struct {
	Commits   uint64
	Aborts    uint64
	Conflicts uint64
	Kills     uint64
}

// Memory is a transactional heap: a fixed-capacity array of 64-bit words
// plus the lock array that mediates transactional access. One Memory holds
// the state of one operator.
type Memory struct {
	data  []atomic.Uint64
	locks []atomic.Pointer[lockState]
	mask  uint32

	clock     atomic.Uint64
	allocNext atomic.Uint64
	txSeq     atomic.Uint64

	policy ConflictPolicy

	// sink, when non-nil, receives conflict witnesses. It is consulted only
	// on conflict/abort paths, guarded by a single nil check, so profiling
	// off costs nothing on the conflict-free hot path. It must be installed
	// before the Memory is shared between goroutines.
	sink ConflictSink

	// labelSpace is an opaque attachment used by layered packages
	// (internal/state) to annotate address ranges with human-readable
	// names. The STM itself never inspects it.
	labelSpace atomic.Value

	// commitGate excludes commits (read side) from checkpoints (write
	// side) so Snapshot sees a transaction-consistent state.
	commitGate sync.RWMutex

	commits   atomic.Uint64
	aborts    atomic.Uint64
	conflicts atomic.Uint64
	kills     atomic.Uint64
}

// Option configures a Memory.
type Option func(*Memory)

// WithConflictPolicy overrides the default AbortNewest policy.
func WithConflictPolicy(p ConflictPolicy) Option {
	return func(m *Memory) { m.policy = p }
}

// WithConflictSink installs a conflict witness sink at construction.
func WithConflictSink(s ConflictSink) Option {
	return func(m *Memory) { m.sink = s }
}

// SetConflictSink installs (or clears) the conflict witness sink. Like
// WithConflictSink it must run before the Memory is shared between
// goroutines — the engine calls it at node construction and again after a
// recovery memory swap, both single-threaded.
func (m *Memory) SetConflictSink(s ConflictSink) { m.sink = s }

// SetLabelSpace attaches an opaque per-Memory label space (see labelSpace).
func (m *Memory) SetLabelSpace(v any) { m.labelSpace.Store(v) }

// LabelSpace returns the attachment stored by SetLabelSpace, or nil.
func (m *Memory) LabelSpace() any { return m.labelSpace.Load() }

// witness emits a conflict witness. Callers guard with m.sink != nil so
// the profiling-off cost is one predictable branch on the conflict paths.
func (m *Memory) witness(kind ConflictKind, addr Addr, victim, owner *Tx) {
	w := ConflictWitness{Kind: kind, Addr: addr, VictimID: victim.id, VictimTS: victim.ts}
	if owner != nil {
		w.OwnerID = owner.id
		w.OwnerTS = owner.ts
	}
	m.sink.RecordConflict(w)
}

// NewMemory creates a heap with room for capacity words. It panics if
// capacity is not positive (construction-time misuse).
func NewMemory(capacity int, opts ...Option) *Memory {
	if capacity <= 0 {
		panic("stm: NewMemory requires positive capacity")
	}
	nLocks := 1
	for nLocks < capacity && nLocks < 1<<16 {
		nLocks <<= 1
	}
	m := &Memory{
		data:   make([]atomic.Uint64, capacity),
		locks:  make([]atomic.Pointer[lockState], nLocks),
		mask:   uint32(nLocks - 1),
		policy: AbortNewest,
	}
	for i := range m.locks {
		m.locks[i].Store(emptyLock)
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Alloc reserves n consecutive words and returns the address of the first.
func (m *Memory) Alloc(n int) (Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: alloc %d words", ErrBadAddr, n)
	}
	for {
		cur := m.allocNext.Load()
		if cur+uint64(n) > uint64(len(m.data)) {
			return 0, fmt.Errorf("%w: %d of %d words used, need %d more",
				ErrOutOfMemory, cur, len(m.data), n)
		}
		if m.allocNext.CompareAndSwap(cur, cur+uint64(n)) {
			return Addr(cur), nil
		}
	}
}

// Capacity returns the total number of words.
func (m *Memory) Capacity() int { return len(m.data) }

// Allocated returns the number of words handed out by Alloc.
func (m *Memory) Allocated() int { return int(m.allocNext.Load()) }

// Stats returns a snapshot of the cumulative counters.
func (m *Memory) Stats() Stats {
	return Stats{
		Commits:   m.commits.Load(),
		Aborts:    m.aborts.Load(),
		Conflicts: m.conflicts.Load(),
		Kills:     m.kills.Load(),
	}
}

// Clock returns the current commit clock.
func (m *Memory) Clock() uint64 { return m.clock.Load() }

// entryFor maps an address to its lock-array slot. Nearby addresses map to
// distinct entries; far apart addresses may collide (false conflicts, as in
// any lock-array STM).
func (m *Memory) entryFor(addr Addr) *atomic.Pointer[lockState] {
	return &m.locks[uint32(addr)&m.mask]
}

// ReadCommitted returns the committed value of addr, outside any
// transaction. It reflects only committed state, never buffered writes.
func (m *Memory) ReadCommitted(addr Addr) (uint64, error) {
	if int(addr) >= len(m.data) {
		return 0, fmt.Errorf("%w: %d", ErrBadAddr, addr)
	}
	return m.data[addr].Load(), nil
}

// WriteDirect stores a value bypassing concurrency control. It is intended
// for single-threaded initialization and checkpoint restore only.
func (m *Memory) WriteDirect(addr Addr, v uint64) error {
	if int(addr) >= len(m.data) {
		return fmt.Errorf("%w: %d", ErrBadAddr, addr)
	}
	m.data[addr].Store(v)
	return nil
}

// Snapshot copies the committed words [0, Allocated()) while holding the
// commit gate, yielding a transaction-consistent checkpoint image.
func (m *Memory) Snapshot() []uint64 {
	m.commitGate.Lock()
	defer m.commitGate.Unlock()
	n := int(m.allocNext.Load())
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = m.data[i].Load()
	}
	return out
}

// Restore overwrites the committed state with a checkpoint image and
// resets the allocation cursor past it. It must only be called while no
// transactions are running (recovery is single-threaded).
func (m *Memory) Restore(image []uint64) error {
	if len(image) > len(m.data) {
		return fmt.Errorf("%w: image %d words, capacity %d", ErrOutOfMemory, len(image), len(m.data))
	}
	for i, v := range image {
		m.data[i].Store(v)
	}
	if uint64(len(image)) > m.allocNext.Load() {
		m.allocNext.Store(uint64(len(image)))
	}
	return nil
}

// Begin starts a transaction for an event with the given application
// timestamp. Timestamps drive conflict resolution (AbortNewest) and define
// the commit order the engine must follow.
func (m *Memory) Begin(ts int64) *Tx {
	tx := &Tx{
		mem:      m,
		id:       m.txSeq.Add(1),
		ts:       ts,
		snapshot: m.clock.Load(),
		reads:    make(map[Addr]readEntry),
		writes:   make(map[Addr]uint64),
		entries:  make(map[uint32]bool),
		deps:     make(map[*Tx]Addr),
	}
	tx.status.Store(int32(StatusActive))
	return tx
}
