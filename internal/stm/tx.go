package stm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// readEntry records how a transaction obtained the value of an address:
// either from committed memory (version = the lock entry's version at read
// time, from == nil) or speculatively from the write buffer of an open
// transaction (from != nil).
type readEntry struct {
	version uint64
	from    *Tx
}

// Tx is a transaction. A Tx is created by Memory.Begin, executed by one
// goroutine (Read/Write/Complete), and may then be revalidated, committed
// or aborted by a different goroutine (the engine's commit scheduler) —
// the paper's "paused ... and later revalidated and committed by another
// thread" extension (§5).
//
// Contract: any method returning ErrConflict dooms the transaction; the
// caller must call Abort and re-execute the work in a fresh transaction.
type Tx struct {
	mem      *Memory
	id       uint64
	ts       int64
	snapshot uint64
	status   atomic.Int32

	// mu guards writes, entries, deps, dependents and onAbort. reads is
	// only touched by the executing goroutine while Active (validation
	// happens after the Completed transition, which synchronizes).
	// deps maps each dependency to the address that created it (first
	// speculative read-from or WAW overwrite), so a cascading abort can be
	// attributed to a concrete state word.
	mu         sync.Mutex
	reads      map[Addr]readEntry
	writes     map[Addr]uint64
	entries    map[uint32]bool
	deps       map[*Tx]Addr
	dependents []*Tx
	onAbort    func(*Tx)

	commitVersion uint64
	abortOnce     sync.Once
}

// statusCommitting is internal: between Completed and Committed while
// writes are being applied. It is not exposed as a Status constant because
// callers never observe it across an API boundary for long.
const statusCommitting = int32(99)

// ID returns the transaction's unique id (per Memory, monotonically
// increasing — later Begin means larger ID).
func (tx *Tx) ID() uint64 { return tx.id }

// Timestamp returns the event timestamp the transaction was begun with.
func (tx *Tx) Timestamp() int64 { return tx.ts }

// Status returns the transaction's current lifecycle state.
func (tx *Tx) Status() Status {
	s := tx.status.Load()
	if s == statusCommitting {
		return StatusCompleted
	}
	return Status(s)
}

// OnAbort registers a callback invoked exactly once if the transaction
// aborts (directly or by cascade). The callback runs on whichever goroutine
// triggers the abort and must not block.
func (tx *Tx) OnAbort(fn func(*Tx)) {
	tx.mu.Lock()
	tx.onAbort = fn
	tx.mu.Unlock()
}

// newerThan reports whether tx is "newer" (arrived later) than other:
// larger timestamp, ties broken by id.
func (tx *Tx) newerThan(other *Tx) bool {
	if tx.ts != other.ts {
		return tx.ts > other.ts
	}
	return tx.id > other.id
}

// checkRunnable returns ErrConflict if the transaction has been killed or
// aborted, ErrInvalidState if it is not executing.
func (tx *Tx) checkRunnable() error {
	switch Status(tx.status.Load()) {
	case StatusActive:
		return nil
	case StatusKilled, StatusAborted:
		return ErrConflict
	default:
		return fmt.Errorf("%w: %s", ErrInvalidState, tx.Status())
	}
}

// buffered reports whether the transaction has a buffered write for addr,
// and its value.
func (tx *Tx) buffered(addr Addr) (uint64, bool) {
	tx.mu.Lock()
	v, ok := tx.writes[addr]
	tx.mu.Unlock()
	return v, ok
}

// addDependent registers d as depending on tx. It returns false if tx has
// already aborted (the dependency is void and d must not rely on it).
func (tx *Tx) addDependent(d *Tx) bool {
	tx.mu.Lock()
	tx.dependents = append(tx.dependents, d)
	tx.mu.Unlock()
	return Status(tx.status.Load()) != StatusAborted
}

// dependOn records that tx must commit after o and abort if o aborts.
// addr is the address that created the dependency (kept for conflict
// attribution). It returns ErrConflict if o has already aborted.
func (tx *Tx) dependOn(o *Tx, addr Addr) error {
	if o == tx {
		return nil
	}
	tx.mu.Lock()
	if _, dup := tx.deps[o]; dup {
		tx.mu.Unlock()
		return nil
	}
	tx.deps[o] = addr
	tx.mu.Unlock()
	if !o.addDependent(tx) {
		return ErrConflict
	}
	return nil
}

// resolve handles a conflict with another transaction that is actively
// writing to addr's lock entry. Under AbortNewest the transaction of the
// later event is killed (the paper's policy: abort the transaction of the
// event that arrived last). It returns ErrConflict if tx itself is the
// victim; nil if the other transaction was targeted (the caller retries
// its operation).
func (tx *Tx) resolve(other *Tx, addr Addr) error {
	tx.mem.conflicts.Add(1)
	victimIsSelf := tx.newerThan(other)
	if tx.mem.policy == AbortOldest {
		victimIsSelf = !victimIsSelf
	}
	if victimIsSelf {
		if tx.mem.sink != nil {
			tx.mem.witness(ConflictWriteWrite, addr, tx, other)
		}
		return ErrConflict
	}
	if tx.mem.sink != nil {
		tx.mem.witness(ConflictWriteWrite, addr, other, tx)
	}
	other.kill()
	return nil
}

// kill dooms an Active transaction. Its goroutine observes the doom at its
// next STM call and aborts. Killing a transaction that is no longer Active
// is a no-op (the race is resolved by the caller re-reading the chain).
func (tx *Tx) kill() {
	if tx.status.CompareAndSwap(int32(StatusActive), int32(StatusKilled)) {
		tx.mem.kills.Add(1)
	}
}

// Read returns the value of addr as seen by the transaction: its own
// buffered write if any, else the buffered value of the most recent open
// transaction registered as a writer of addr (a *speculative read*, which
// adds a dependency), else committed memory.
func (tx *Tx) Read(addr Addr) (uint64, error) {
	if err := tx.checkRunnable(); err != nil {
		return 0, err
	}
	if int(addr) >= len(tx.mem.data) {
		return 0, fmt.Errorf("%w: %d", ErrBadAddr, addr)
	}
	if v, ok := tx.buffered(addr); ok {
		return v, nil
	}
	entry := tx.mem.entryFor(addr)
	for {
		if err := tx.checkRunnable(); err != nil {
			return 0, err
		}
		ls := entry.Load()
		v, done, retry, err := tx.readFromChain(ls, addr)
		if err != nil {
			return 0, err
		}
		if done {
			return v, nil
		}
		if retry {
			runtime.Gosched()
			continue
		}
		// No owner buffers addr: read committed memory under the entry's
		// version, re-checking the entry so the (value, version) pair is
		// consistent.
		val := tx.mem.data[addr].Load()
		if entry.Load() != ls {
			continue
		}
		if ls.version > tx.snapshot && !tx.extendSnapshot() {
			tx.mem.conflicts.Add(1)
			return 0, ErrConflict
		}
		tx.mu.Lock()
		if _, seen := tx.reads[addr]; !seen {
			tx.reads[addr] = readEntry{version: ls.version}
		}
		tx.mu.Unlock()
		return val, nil
	}
}

// readFromChain scans the owner chain (newest first) for a buffered value
// of addr. Returns done=true with the value on a successful speculative
// read, retry=true if the chain is stale and must be re-read, err on
// conflict loss.
func (tx *Tx) readFromChain(ls *lockState, addr Addr) (v uint64, done, retry bool, err error) {
	for i := len(ls.owners) - 1; i >= 0; i-- {
		o := ls.owners[i]
		if o == tx {
			continue // we own the entry but do not buffer addr
		}
		if o.newerThan(tx) {
			// o writes "in our future" (it must commit after us, e.g. we
			// are a re-execution of an earlier event). Its buffer is
			// invisible to us; read beneath it.
			continue
		}
		st := Status(o.status.Load())
		if st == StatusAborted || o.status.Load() == statusCommitting {
			return 0, false, true, nil // chain about to change
		}
		bv, has := o.buffered(addr)
		if !has {
			continue
		}
		switch st {
		case StatusActive, StatusKilled:
			if rerr := tx.resolve(o, addr); rerr != nil {
				return 0, false, false, rerr
			}
			return 0, false, true, nil
		case StatusCompleted:
			// Speculative read-from: register the dependency before using
			// the value so a concurrent abort of o cascades to us.
			if derr := tx.dependOn(o, addr); derr != nil {
				return 0, false, true, nil
			}
			tx.mu.Lock()
			tx.reads[addr] = readEntry{from: o}
			tx.mu.Unlock()
			return bv, true, false, nil
		case StatusCommitted:
			return 0, false, true, nil // committed but not yet unchained
		}
	}
	return 0, false, false, nil
}

// Write buffers a new value for addr, registering the transaction as a
// writer in the lock array. Overwriting the buffered value of an open
// transaction is allowed and creates a dependency (paper §3).
func (tx *Tx) Write(addr Addr, v uint64) error {
	if err := tx.checkRunnable(); err != nil {
		return err
	}
	if int(addr) >= len(tx.mem.data) {
		return fmt.Errorf("%w: %d", ErrBadAddr, addr)
	}
	slot := uint32(addr) & tx.mem.mask
	tx.mu.Lock()
	owned := tx.entries[slot]
	tx.mu.Unlock()
	if owned {
		tx.bufferWrite(addr, v)
		return nil
	}
	entry := &tx.mem.locks[slot]
	for {
		if err := tx.checkRunnable(); err != nil {
			return err
		}
		ls := entry.Load()
		retry := false
		var newDeps []*Tx
		for _, o := range ls.owners {
			if o == tx {
				// Raced with ourselves? entries said not owned; impossible
				// since only this goroutine registers. Defensive:
				retry = true
				break
			}
			switch Status(o.status.Load()) {
			case StatusActive, StatusKilled:
				if err := tx.resolve(o, addr); err != nil {
					return err
				}
				retry = true
			case StatusAborted, StatusCommitted:
				retry = true // chain about to be cleaned
			case StatusCompleted:
				// Overwriting the buffer of an older open transaction
				// orders our commit after it (WAW dependency). A *newer*
				// open owner commits after us regardless; no dependency.
				if !o.newerThan(tx) {
					newDeps = append(newDeps, o)
				}
			}
			if retry {
				break
			}
		}
		if retry {
			runtime.Gosched()
			continue
		}
		owners := make([]*Tx, len(ls.owners)+1)
		copy(owners, ls.owners)
		owners[len(ls.owners)] = tx
		if !entry.CompareAndSwap(ls, &lockState{version: ls.version, owners: owners}) {
			continue
		}
		tx.mu.Lock()
		tx.entries[slot] = true
		tx.mu.Unlock()
		for _, o := range newDeps {
			if err := tx.dependOn(o, addr); err != nil {
				return err // a predecessor aborted under us; cascade applies
			}
		}
		tx.bufferWrite(addr, v)
		return nil
	}
}

func (tx *Tx) bufferWrite(addr Addr, v uint64) {
	tx.mu.Lock()
	tx.writes[addr] = v
	tx.mu.Unlock()
}

// extendSnapshot revalidates all committed-memory reads and, if they are
// still current, advances the transaction's snapshot to the present clock
// (LSA-style snapshot extension, preserving opacity).
func (tx *Tx) extendSnapshot() bool {
	now := tx.mem.clock.Load()
	if !tx.validateReads() {
		return false
	}
	tx.snapshot = now
	return true
}

// validateReads checks every read entry:
//
//   - committed-memory reads: the lock entry's version is unchanged, and
//     no open transaction that must commit before us (smaller timestamp)
//     has buffered a write to the address;
//   - speculative reads: the source transaction has not aborted, and if it
//     has committed, no later commit has overwritten the entry.
func (tx *Tx) validateReads() bool {
	// reads is only mutated by the executing goroutine while Active;
	// validation happens on that goroutine or, after the Completed
	// transition (which synchronizes), on the commit scheduler. Holding
	// tx.mu here would deadlock against o.buffered taking o.mu while o
	// validates reads against us.
	// Witnesses are only recorded at the failure returns, so the all-valid
	// path is branch-for-branch identical with profiling off and on.
	for addr, re := range tx.reads {
		entry := tx.mem.entryFor(addr)
		ls := entry.Load()
		if re.from != nil {
			switch Status(re.from.status.Load()) {
			case StatusAborted:
				if tx.mem.sink != nil {
					tx.mem.witness(ConflictValidation, addr, tx, re.from)
				}
				return false
			case StatusCommitted:
				if ls.version != re.from.commitVersion {
					if tx.mem.sink != nil {
						tx.mem.witness(ConflictValidation, addr, tx, re.from)
					}
					return false
				}
			}
			continue
		}
		if ls.version != re.version {
			if tx.mem.sink != nil {
				tx.mem.witness(ConflictValidation, addr, tx, nil)
			}
			return false
		}
		for _, o := range ls.owners {
			if o == tx {
				continue
			}
			if _, has := o.buffered(addr); !has {
				continue
			}
			// A writer that must commit before us makes our read stale.
			if !o.newerThan(tx) && Status(o.status.Load()) != StatusAborted {
				if tx.mem.sink != nil {
					tx.mem.witness(ConflictValidation, addr, tx, o)
				}
				return false
			}
		}
	}
	return true
}

// Complete finishes the execution phase: it validates the read set and
// moves the transaction to the open (pre-commit) state, keeping its lock
// array entries — the paper's speculative wait state. On ErrConflict the
// caller must Abort and re-execute.
func (tx *Tx) Complete() error {
	if !tx.status.CompareAndSwap(int32(StatusActive), int32(StatusCompleted)) {
		switch Status(tx.status.Load()) {
		case StatusKilled, StatusAborted:
			return ErrConflict
		default:
			return fmt.Errorf("%w: Complete from %s", ErrInvalidState, tx.Status())
		}
	}
	if !tx.validateReads() {
		return ErrConflict
	}
	return nil
}

// DepsOpen returns the number of dependencies that have not yet committed.
// The engine polls this (together with its own log-stability and input-
// finality conditions) to decide when a transaction may commit.
func (tx *Tx) DepsOpen() int {
	tx.mu.Lock()
	deps := make([]*Tx, 0, len(tx.deps))
	for d := range tx.deps {
		deps = append(deps, d)
	}
	tx.mu.Unlock()
	open := 0
	for _, d := range deps {
		if Status(d.status.Load()) != StatusCommitted {
			open++
		}
	}
	return open
}

// Commit applies the buffered writes and releases the lock entries. The
// transaction must be Completed, all its dependencies must have committed,
// and the read set must still be valid. Commits within one Memory must be
// issued one at a time in event-timestamp order (the engine's commit
// scheduler guarantees this).
//
// Returns ErrDepsOpen if a dependency is still open (retry later) and
// ErrConflict if the transaction aborted, a dependency aborted, or
// validation failed (the caller must Abort and re-execute).
func (tx *Tx) Commit() error {
	if err := tx.commitPrepare(); err != nil {
		return err
	}
	tx.mem.commitGate.RLock()
	version := tx.mem.clock.Add(1)
	tx.commitApplyLocked(version)
	tx.mem.commitGate.RUnlock()
	return nil
}

// commitPrepare checks dependencies, claims the committing state and
// revalidates the read set — everything Commit does before touching the
// commit gate. On ErrConflict the transaction has been aborted.
func (tx *Tx) commitPrepare() error {
	// Check dependencies before claiming the committing state.
	tx.mu.Lock()
	deps := make([]*Tx, 0, len(tx.deps))
	for d := range tx.deps {
		deps = append(deps, d)
	}
	tx.mu.Unlock()
	for _, d := range deps {
		switch Status(d.status.Load()) {
		case StatusCommitted:
		case StatusAborted:
			tx.doAbort()
			return ErrConflict
		default:
			return ErrDepsOpen
		}
	}
	if !tx.status.CompareAndSwap(int32(StatusCompleted), statusCommitting) {
		switch Status(tx.status.Load()) {
		case StatusAborted, StatusKilled:
			return ErrConflict
		case StatusCommitted:
			return fmt.Errorf("%w: already committed", ErrInvalidState)
		default:
			return fmt.Errorf("%w: Commit from %s", ErrInvalidState, tx.Status())
		}
	}
	if !tx.validateReads() {
		tx.status.Store(int32(StatusCompleted)) // restore for doAbort bookkeeping
		tx.doAbort()
		return ErrConflict
	}
	return nil
}

// commitApplyLocked applies the buffered writes at the given commit
// version and releases the lock entries. The caller holds the commit gate
// (read side) and has successfully run commitPrepare.
func (tx *Tx) commitApplyLocked(version uint64) {
	tx.commitVersion = version
	tx.mu.Lock()
	for addr, v := range tx.writes {
		tx.mem.data[addr].Store(v)
	}
	slots := make([]uint32, 0, len(tx.entries))
	for slot := range tx.entries {
		slots = append(slots, slot)
	}
	tx.mu.Unlock()
	for _, slot := range slots {
		tx.unchain(slot, version)
	}
	tx.status.Store(int32(StatusCommitted))
	tx.mem.commits.Add(1)
}

// unchain removes tx from a lock-array slot, setting the slot's version if
// the removal is a commit (version != 0).
func (tx *Tx) unchain(slot uint32, version uint64) {
	entry := &tx.mem.locks[slot]
	for {
		ls := entry.Load()
		idx := -1
		for i, o := range ls.owners {
			if o == tx {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		owners := make([]*Tx, 0, len(ls.owners)-1)
		owners = append(owners, ls.owners[:idx]...)
		owners = append(owners, ls.owners[idx+1:]...)
		newVersion := ls.version
		if version != 0 {
			newVersion = version
		}
		if entry.CompareAndSwap(ls, &lockState{version: newVersion, owners: owners}) {
			return
		}
	}
}

// Abort aborts the transaction, releasing its lock entries and cascading
// to every dependent transaction. It is idempotent and may be called from
// any goroutine once the executing goroutine has stopped issuing
// operations (the engine's contract after an ErrConflict).
func (tx *Tx) Abort() {
	tx.doAbort()
}

func (tx *Tx) doAbort() {
	for {
		st := tx.status.Load()
		switch st {
		case int32(StatusCommitted):
			return
		case int32(StatusAborted):
			return
		case statusCommitting:
			// A committing transaction cannot legitimately be cascade-
			// aborted (all its deps committed); wait out the transition.
			runtime.Gosched()
			continue
		}
		if tx.status.CompareAndSwap(st, int32(StatusAborted)) {
			tx.finishAbort()
			return
		}
	}
}

// finishAbort runs the post-status abort work exactly once.
func (tx *Tx) finishAbort() {
	tx.abortOnce.Do(func() {
		tx.mem.aborts.Add(1)
		tx.mu.Lock()
		slots := make([]uint32, 0, len(tx.entries))
		for slot := range tx.entries {
			slots = append(slots, slot)
		}
		dependents := tx.dependents
		tx.dependents = nil
		onAbort := tx.onAbort
		tx.mu.Unlock()
		for _, slot := range slots {
			tx.unchain(slot, 0)
		}
		for _, d := range dependents {
			d.cascadeAbort(tx)
		}
		if onAbort != nil {
			onAbort(tx)
		}
	})
}

// cascadeAbort is invoked on a dependent when one of its dependencies
// (culprit) aborts. Active dependents are killed (their goroutine aborts
// at its next operation); open dependents abort immediately.
func (tx *Tx) cascadeAbort(culprit *Tx) {
	for {
		st := tx.status.Load()
		switch st {
		case int32(StatusActive):
			if tx.status.CompareAndSwap(st, int32(StatusKilled)) {
				tx.mem.kills.Add(1)
				if tx.mem.sink != nil {
					tx.witnessCascade(culprit)
				}
				return
			}
		case int32(StatusKilled), int32(StatusAborted), int32(StatusCommitted):
			return
		case int32(StatusCompleted):
			if tx.status.CompareAndSwap(st, int32(StatusAborted)) {
				if tx.mem.sink != nil {
					tx.witnessCascade(culprit)
				}
				tx.finishAbort()
				return
			}
		case statusCommitting:
			runtime.Gosched()
		}
	}
}

// witnessCascade records a cascade witness attributed to the address that
// created the dependency on culprit.
func (tx *Tx) witnessCascade(culprit *Tx) {
	tx.mu.Lock()
	addr := tx.deps[culprit]
	tx.mu.Unlock()
	tx.mem.witness(ConflictCascade, addr, tx, culprit)
}

// WritesSnapshot returns a copy of the buffered write set. The engine uses
// it after a rollback + re-execution to decide whether downstream effects
// actually changed (paper §3.1: dependents are only re-executed when the
// re-execution produced different values).
func (tx *Tx) WritesSnapshot() map[Addr]uint64 {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	out := make(map[Addr]uint64, len(tx.writes))
	for a, v := range tx.writes {
		out[a] = v
	}
	return out
}

// ReadSetSize and WriteSetSize expose set sizes for metrics and tests.
func (tx *Tx) ReadSetSize() int {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return len(tx.reads)
}

// WriteSetSize returns the number of distinct addresses buffered.
func (tx *Tx) WriteSetSize() int {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return len(tx.writes)
}
