package stm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewMemoryPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMemory(0) did not panic")
		}
	}()
	NewMemory(0)
}

func TestAlloc(t *testing.T) {
	m := NewMemory(10)
	a, err := m.Alloc(4)
	if err != nil || a != 0 {
		t.Fatalf("Alloc(4) = %d, %v", a, err)
	}
	b, err := m.Alloc(6)
	if err != nil || b != 4 {
		t.Fatalf("Alloc(6) = %d, %v", b, err)
	}
	if _, err := m.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-alloc = %v, want ErrOutOfMemory", err)
	}
	if _, err := m.Alloc(0); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("Alloc(0) = %v, want ErrBadAddr", err)
	}
	if m.Allocated() != 10 || m.Capacity() != 10 {
		t.Fatalf("Allocated=%d Capacity=%d", m.Allocated(), m.Capacity())
	}
}

func TestBasicCommit(t *testing.T) {
	m := NewMemory(8)
	tx := m.Begin(1)
	if err := tx.Write(0, 42); err != nil {
		t.Fatal(err)
	}
	// Buffered write is invisible to committed reads.
	if v, _ := m.ReadCommitted(0); v != 0 {
		t.Fatalf("uncommitted write visible: %d", v)
	}
	// Read-own-write.
	if v, err := tx.Read(0); err != nil || v != 42 {
		t.Fatalf("read own write = %d, %v", v, err)
	}
	if err := tx.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadCommitted(0); v != 42 {
		t.Fatalf("committed value = %d, want 42", v)
	}
	if tx.Status() != StatusCommitted {
		t.Fatalf("status = %v", tx.Status())
	}
	if s := m.Stats(); s.Commits != 1 {
		t.Fatalf("commits = %d", s.Commits)
	}
}

func TestReadCommittedValue(t *testing.T) {
	m := NewMemory(8)
	mustRun(t, m, 1, func(tx *Tx) error { return tx.Write(3, 7) })
	tx := m.Begin(2)
	if v, err := tx.Read(3); err != nil || v != 7 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	mustFinish(t, tx)
}

func TestBadAddr(t *testing.T) {
	m := NewMemory(4)
	tx := m.Begin(1)
	if _, err := tx.Read(99); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("Read(99) = %v", err)
	}
	if err := tx.Write(99, 1); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("Write(99) = %v", err)
	}
	if _, err := m.ReadCommitted(99); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("ReadCommitted(99) = %v", err)
	}
	if err := m.WriteDirect(99, 1); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("WriteDirect(99) = %v", err)
	}
	tx.Abort()
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := NewMemory(4)
	tx := m.Begin(1)
	if err := tx.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if v, _ := m.ReadCommitted(0); v != 0 {
		t.Fatalf("aborted write visible: %d", v)
	}
	// The lock entry must be free for a new transaction.
	mustRun(t, m, 2, func(tx *Tx) error { return tx.Write(0, 9) })
	if v, _ := m.ReadCommitted(0); v != 9 {
		t.Fatalf("post-abort write = %d, want 9", v)
	}
	if s := m.Stats(); s.Aborts != 1 {
		t.Fatalf("aborts = %d", s.Aborts)
	}
}

func TestOperationsAfterComplete(t *testing.T) {
	m := NewMemory(4)
	tx := m.Begin(1)
	if err := tx.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(1, 2); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("Write after Complete = %v", err)
	}
	if _, err := tx.Read(0); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("Read after Complete = %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("double Commit = %v", err)
	}
}

func TestCommitBeforeComplete(t *testing.T) {
	m := NewMemory(4)
	tx := m.Begin(1)
	if err := tx.Commit(); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("Commit while Active = %v", err)
	}
	tx.Abort()
}

// TestSpeculativeReadFrom is the paper's core §3 behaviour: an open
// (completed, not yet authorized) transaction's buffered value is visible
// to a later transaction, which becomes dependent on it.
func TestSpeculativeReadFrom(t *testing.T) {
	m := NewMemory(4)
	a := m.Begin(1)
	if err := a.Write(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := a.Complete(); err != nil {
		t.Fatal(err)
	}

	b := m.Begin(2)
	v, err := b.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Fatalf("speculative read = %d, want 100 (a's buffer)", v)
	}
	if err := b.Complete(); err != nil {
		t.Fatal(err)
	}
	// b cannot commit while a is open.
	if err := b.Commit(); !errors.Is(err, ErrDepsOpen) {
		t.Fatalf("Commit with open dep = %v, want ErrDepsOpen", err)
	}
	if b.DepsOpen() != 1 {
		t.Fatalf("DepsOpen = %d, want 1", b.DepsOpen())
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCascadingAbort: if the transaction whose buffer was read aborts, the
// dependent aborts too, and its OnAbort callback fires.
func TestCascadingAbort(t *testing.T) {
	m := NewMemory(4)
	a := m.Begin(1)
	if err := a.Write(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := a.Complete(); err != nil {
		t.Fatal(err)
	}

	b := m.Begin(2)
	if _, err := b.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Complete(); err != nil {
		t.Fatal(err)
	}
	var aborted atomic.Int32
	b.OnAbort(func(*Tx) { aborted.Add(1) })

	a.Abort()
	if b.Status() != StatusAborted {
		t.Fatalf("dependent status = %v, want aborted", b.Status())
	}
	if aborted.Load() != 1 {
		t.Fatalf("OnAbort fired %d times, want 1", aborted.Load())
	}
	if err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("Commit of cascaded-abort tx = %v, want ErrConflict", err)
	}
}

// TestCascadingAbortChain: abort propagates transitively a→b→c.
func TestCascadingAbortChain(t *testing.T) {
	m := NewMemory(4)
	a := m.Begin(1)
	mustDo(t, a.Write(0, 1))
	mustDo(t, a.Complete())
	b := m.Begin(2)
	if _, err := b.Read(0); err != nil {
		t.Fatal(err)
	}
	mustDo(t, b.Write(1, 2))
	mustDo(t, b.Complete())
	c := m.Begin(3)
	if _, err := c.Read(1); err != nil {
		t.Fatal(err)
	}
	mustDo(t, c.Complete())

	a.Abort()
	if b.Status() != StatusAborted || c.Status() != StatusAborted {
		t.Fatalf("statuses after cascade: b=%v c=%v", b.Status(), c.Status())
	}
	if s := m.Stats(); s.Aborts != 3 {
		t.Fatalf("aborts = %d, want 3", s.Aborts)
	}
}

// TestCascadeKillsActiveDependent: an Active dependent is killed and its
// next operation reports the conflict.
func TestCascadeKillsActiveDependent(t *testing.T) {
	m := NewMemory(4)
	a := m.Begin(1)
	mustDo(t, a.Write(0, 1))
	mustDo(t, a.Complete())
	b := m.Begin(2)
	if _, err := b.Read(0); err != nil { // dependency created while Active
		t.Fatal(err)
	}
	a.Abort()
	if b.Status() != StatusKilled {
		t.Fatalf("active dependent status = %v, want killed", b.Status())
	}
	if _, err := b.Read(1); !errors.Is(err, ErrConflict) {
		t.Fatalf("killed tx Read = %v, want ErrConflict", err)
	}
	if err := b.Complete(); !errors.Is(err, ErrConflict) {
		t.Fatalf("killed tx Complete = %v, want ErrConflict", err)
	}
	b.Abort()
}

// TestOverwriteOpenBuffer: write-after-write over an open transaction is
// allowed, creates a dependency, and the final committed value is the
// later transaction's.
func TestOverwriteOpenBuffer(t *testing.T) {
	m := NewMemory(4)
	a := m.Begin(1)
	mustDo(t, a.Write(0, 10))
	mustDo(t, a.Complete())
	b := m.Begin(2)
	mustDo(t, b.Write(0, 20))
	mustDo(t, b.Complete())

	if err := b.Commit(); !errors.Is(err, ErrDepsOpen) {
		t.Fatalf("WAW dependent commit = %v, want ErrDepsOpen", err)
	}
	mustDo(t, a.Commit())
	mustDo(t, b.Commit())
	if v, _ := m.ReadCommitted(0); v != 20 {
		t.Fatalf("final value = %d, want 20", v)
	}
}

// TestActiveConflictAbortNewest: two active transactions writing the same
// address — the one with the larger timestamp loses.
func TestActiveConflictAbortNewest(t *testing.T) {
	m := NewMemory(4)
	older := m.Begin(1)
	newer := m.Begin(2)
	mustDo(t, older.Write(0, 1))
	// newer writing the same address must lose immediately.
	if err := newer.Write(0, 2); !errors.Is(err, ErrConflict) {
		t.Fatalf("newer Write = %v, want ErrConflict", err)
	}
	newer.Abort()
	mustDo(t, older.Complete())
	mustDo(t, older.Commit())
	if v, _ := m.ReadCommitted(0); v != 1 {
		t.Fatalf("value = %d, want 1", v)
	}
	if s := m.Stats(); s.Conflicts == 0 {
		t.Fatal("conflict counter not bumped")
	}
}

// TestActiveConflictKillsNewerOwner: the older transaction arrives second
// and kills the newer active owner.
func TestActiveConflictKillsNewerOwner(t *testing.T) {
	m := NewMemory(4)
	newer := m.Begin(5)
	older := m.Begin(1)
	mustDo(t, newer.Write(0, 2))

	done := make(chan error, 1)
	go func() {
		// older's write spins until newer aborts; run it concurrently.
		done <- older.Write(0, 1)
	}()
	// newer must get killed; give the scheduler a moment then observe.
	deadline := time.After(2 * time.Second)
	for newer.Status() != StatusKilled {
		select {
		case <-deadline:
			t.Fatal("newer was not killed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// The killed transaction's goroutine notices and aborts.
	if err := newer.Complete(); !errors.Is(err, ErrConflict) {
		t.Fatalf("killed Complete = %v, want ErrConflict", err)
	}
	newer.Abort()
	if err := <-done; err != nil {
		t.Fatalf("older Write = %v", err)
	}
	mustDo(t, older.Complete())
	mustDo(t, older.Commit())
	if v, _ := m.ReadCommitted(0); v != 1 {
		t.Fatalf("value = %d, want 1", v)
	}
}

// TestAbortOldestPolicy: with the ablation policy the older transaction is
// the victim.
func TestAbortOldestPolicy(t *testing.T) {
	m := NewMemory(4, WithConflictPolicy(AbortOldest))
	older := m.Begin(1)
	newer := m.Begin(2)
	mustDo(t, newer.Write(0, 2))
	// older writing the same address now loses.
	if err := older.Write(0, 1); !errors.Is(err, ErrConflict) {
		t.Fatalf("older Write = %v, want ErrConflict under AbortOldest", err)
	}
	older.Abort()
	mustDo(t, newer.Complete())
	mustDo(t, newer.Commit())
}

// TestReadBeneathNewerOpenOwner: a transaction must not see the buffered
// writes of an open transaction with a larger timestamp (its future).
func TestReadBeneathNewerOpenOwner(t *testing.T) {
	m := NewMemory(4)
	mustRun(t, m, 1, func(tx *Tx) error { return tx.Write(0, 7) })

	future := m.Begin(10)
	mustDo(t, future.Write(0, 99))
	mustDo(t, future.Complete())

	past := m.Begin(5)
	v, err := past.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("read beneath newer owner = %d, want committed 7", v)
	}
	mustDo(t, past.Complete())
	// past commits first (timestamp order), future after.
	mustDo(t, past.Commit())
	mustDo(t, future.Commit())
	if v, _ := m.ReadCommitted(0); v != 99 {
		t.Fatalf("final value = %d, want 99", v)
	}
}

// TestStaleReadDetectedAtCommit: t2 reads an address, then an older open
// transaction t1 (which must commit first) turns out to have written it;
// t2's validation fails.
func TestStaleReadDetectedAtCommit(t *testing.T) {
	m := NewMemory(4)
	t1 := m.Begin(1)
	t2 := m.Begin(2)
	if _, err := t2.Read(0); err != nil { // reads version 0
		t.Fatal(err)
	}
	mustDo(t, t1.Write(0, 5)) // older writer appears after the read
	mustDo(t, t1.Complete())
	if err := t2.Complete(); !errors.Is(err, ErrConflict) {
		t.Fatalf("t2.Complete = %v, want ErrConflict (stale read)", err)
	}
	t2.Abort()
	mustDo(t, t1.Commit())
}

// TestValidationDetectsCommittedOverwrite: a committed overwrite after the
// read invalidates the reader.
func TestValidationDetectsCommittedOverwrite(t *testing.T) {
	m := NewMemory(4)
	reader := m.Begin(2)
	if _, err := reader.Read(0); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m, 1, func(tx *Tx) error { return tx.Write(0, 5) })
	if err := reader.Complete(); !errors.Is(err, ErrConflict) {
		t.Fatalf("reader.Complete = %v, want ErrConflict", err)
	}
	reader.Abort()
}

// TestCommitByAnotherThread: the paper's §5 requirement — a transaction
// executed on one thread is committed from another.
func TestCommitByAnotherThread(t *testing.T) {
	m := NewMemory(4)
	tx := m.Begin(1)
	doneExec := make(chan struct{})
	go func() {
		defer close(doneExec)
		if err := tx.Write(0, 11); err != nil {
			t.Error(err)
			return
		}
		if err := tx.Complete(); err != nil {
			t.Error(err)
		}
	}()
	<-doneExec
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadCommitted(0); v != 11 {
		t.Fatalf("value = %d, want 11", v)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := NewMemory(8)
	if _, err := m.Alloc(3); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m, 1, func(tx *Tx) error {
		if err := tx.Write(0, 1); err != nil {
			return err
		}
		if err := tx.Write(1, 2); err != nil {
			return err
		}
		return tx.Write(2, 3)
	})
	img := m.Snapshot()
	if len(img) != 3 || img[0] != 1 || img[1] != 2 || img[2] != 3 {
		t.Fatalf("snapshot = %v", img)
	}

	m2 := NewMemory(8)
	if err := m2.Restore(img); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{1, 2, 3} {
		if v, _ := m2.ReadCommitted(Addr(i)); v != want {
			t.Fatalf("restored[%d] = %d, want %d", i, v, want)
		}
	}
	if m2.Allocated() != 3 {
		t.Fatalf("restored Allocated = %d, want 3", m2.Allocated())
	}
	if err := m2.Restore(make([]uint64, 100)); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized Restore = %v", err)
	}
}

func TestWritesSnapshot(t *testing.T) {
	m := NewMemory(4)
	tx := m.Begin(1)
	mustDo(t, tx.Write(0, 1))
	mustDo(t, tx.Write(1, 2))
	ws := tx.WritesSnapshot()
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Fatalf("WritesSnapshot = %v", ws)
	}
	if tx.WriteSetSize() != 2 {
		t.Fatalf("WriteSetSize = %d", tx.WriteSetSize())
	}
	tx.Abort()
}

func TestStatusString(t *testing.T) {
	want := map[Status]string{
		StatusActive:    "active",
		StatusKilled:    "killed",
		StatusCompleted: "completed",
		StatusCommitted: "committed",
		StatusAborted:   "aborted",
		Status(42):      "status(42)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, w)
		}
	}
}

// --- concurrency stress tests ---

// TestConcurrentCounter is the classic lost-update test: N workers each
// increment a shared counter K times inside transactions; the final value
// must be exactly N*K.
func TestConcurrentCounter(t *testing.T) {
	m := NewMemory(4)
	const workers, perWorker = 8, 200
	var ts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				incrementWithRetry(t, m, &ts, 0)
			}
		}()
	}
	wg.Wait()
	if v, _ := m.ReadCommitted(0); v != workers*perWorker {
		t.Fatalf("counter = %d, want %d", v, workers*perWorker)
	}
}

// TestConcurrentDisjointAddresses: transactions over disjoint addresses
// proceed without interference (no lost work, all commits succeed).
func TestConcurrentDisjointAddresses(t *testing.T) {
	const workers, perWorker = 8, 200
	m := NewMemory(workers)
	var ts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				incrementWithRetry(t, m, &ts, Addr(w))
			}
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if v, _ := m.ReadCommitted(Addr(w)); v != perWorker {
			t.Fatalf("slot %d = %d, want %d", w, v, perWorker)
		}
	}
}

// incrementWithRetry performs one transactional increment of addr,
// retrying on conflicts and open dependencies, following the engine's
// retry discipline.
func incrementWithRetry(t *testing.T, m *Memory, ts *atomic.Int64, addr Addr) {
	t.Helper()
	for {
		tx := m.Begin(ts.Add(1))
		ok := func() bool {
			v, err := tx.Read(addr)
			if err != nil {
				return false
			}
			if err := tx.Write(addr, v+1); err != nil {
				return false
			}
			return tx.Complete() == nil
		}()
		if !ok {
			tx.Abort()
			continue
		}
		for {
			err := tx.Commit()
			if err == nil {
				return
			}
			if errors.Is(err, ErrDepsOpen) {
				time.Sleep(time.Microsecond)
				continue
			}
			tx.Abort()
			break // conflict: retry whole transaction
		}
	}
}

// TestConcurrentMixedReadWrite exercises readers validating against
// concurrent committers without data corruption.
func TestConcurrentMixedReadWrite(t *testing.T) {
	m := NewMemory(16)
	var ts atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers keep two slots equal: tx writes the same value to 0 and 1.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for {
				tx := m.Begin(ts.Add(1))
				if tx.Write(0, i) != nil || tx.Write(1, i) != nil || tx.Complete() != nil {
					tx.Abort()
					continue
				}
				if err := commitWithRetry(tx); err == nil {
					break
				}
			}
		}
	}()
	// Readers must always observe slot0 == slot1 in a committed snapshot.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 500; n++ {
				tx := m.Begin(ts.Add(1))
				a, err1 := tx.Read(0)
				b, err2 := tx.Read(1)
				if err1 != nil || err2 != nil || tx.Complete() != nil {
					tx.Abort()
					continue
				}
				if err := commitWithRetry(tx); err != nil {
					continue
				}
				if a != b {
					t.Errorf("torn read: %d != %d", a, b)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func commitWithRetry(tx *Tx) error {
	for {
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrDepsOpen) {
			time.Sleep(time.Microsecond)
			continue
		}
		tx.Abort()
		return err
	}
}

// --- helpers ---

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// mustRun executes fn in a transaction and commits it, failing the test on
// any error.
func mustRun(t *testing.T, m *Memory, ts int64, fn func(*Tx) error) {
	t.Helper()
	tx := m.Begin(ts)
	if err := fn(tx); err != nil {
		t.Fatal(err)
	}
	mustFinish(t, tx)
}

func mustFinish(t *testing.T, tx *Tx) {
	t.Helper()
	if err := tx.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReadWrite(b *testing.B) {
	m := NewMemory(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := m.Begin(int64(i))
		if _, err := tx.Read(Addr(i % 1024)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(Addr(i%1024), uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Complete(); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
