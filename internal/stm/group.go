package stm

// CommitGroup commits txs in order under a single commit-gate acquisition
// and a single version-clock bump: every transaction in the group shares
// one commit version. It returns the number of transactions committed and
// the error that stopped the group (nil when all committed). Transactions
// before the returned index are committed exactly as if Commit had been
// called on each; the transaction at the index saw the returned error
// (ErrDepsOpen: retry later; ErrConflict: it was aborted and must be
// re-executed); transactions after it were not touched.
//
// The shared commit version is safe under the engine's commit discipline
// (commits within one Memory are issued strictly in event-timestamp
// order): while a later group member still buffers an address, it remains
// chained in the lock array, so no concurrent reader can take the
// committed-memory read path for that address — it either reads the
// member's buffer speculatively (acquiring a dependency) or retries while
// the member is mid-commit. A reader that read an earlier member's value
// therefore never validates successfully against a later same-version
// overwrite it could not have seen. Per-transaction dependency checks,
// read-set validation and conflict witnesses are preserved exactly;
// CommitGroup amortizes only the gate acquisition and the clock bump.
func (m *Memory) CommitGroup(txs []*Tx) (int, error) {
	if len(txs) == 0 {
		return 0, nil
	}
	if len(txs) == 1 {
		if err := txs[0].Commit(); err != nil {
			return 0, err
		}
		return 1, nil
	}
	m.commitGate.RLock()
	version := m.clock.Add(1)
	for i, tx := range txs {
		if err := tx.commitPrepare(); err != nil {
			m.commitGate.RUnlock()
			return i, err
		}
		tx.commitApplyLocked(version)
	}
	m.commitGate.RUnlock()
	return len(txs), nil
}
