package wal

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"streammine/internal/event"
	"streammine/internal/storage"
)

func newMemLog(t *testing.T) (*Log, *storage.MemDisk, *storage.Pool) {
	t.Helper()
	mem := storage.NewMemDisk()
	pool := storage.NewPool([]storage.Disk{mem})
	t.Cleanup(func() { pool.Close() })
	return New(pool), mem, pool
}

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l, _, _ := newMemLog(t)
	last1, err := l.AppendSync([]Record{{Kind: KindRandom, Value: 1}, {Kind: KindRandom, Value: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if last1 != 2 {
		t.Fatalf("first batch last LSN = %d, want 2", last1)
	}
	last2, err := l.AppendSync([]Record{{Kind: KindTime, Value: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if last2 != 3 {
		t.Fatalf("second batch last LSN = %d, want 3", last2)
	}
	if l.StableLSN() != 3 {
		t.Fatalf("StableLSN = %d, want 3", l.StableLSN())
	}
	if l.NextLSN() != 4 {
		t.Fatalf("NextLSN = %d, want 4", l.NextLSN())
	}
}

func TestAppendEmptyBatch(t *testing.T) {
	l, _, _ := newMemLog(t)
	called := false
	lsn, err := l.Append(nil, func(err error) { called = true })
	if err != nil || lsn != 0 {
		t.Fatalf("Append(nil) = %d, %v", lsn, err)
	}
	if !called {
		t.Fatal("done not called for empty batch")
	}
}

func TestScanRoundTrip(t *testing.T) {
	l, mem, _ := newMemLog(t)
	recs := []Record{
		{Kind: KindInput, Operator: 7, Event: event.ID{Source: 1, Seq: 9}, Value: 0},
		{Kind: KindRandom, Operator: 7, Event: event.ID{Source: 1, Seq: 9}, Value: 0xDEADBEEF},
		{Kind: KindTime, Operator: 8, Value: 123456},
		{Kind: KindCustom, Operator: 8, Aux: []byte("free-form")},
	}
	if _, err := l.AppendSync(recs); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(mem.Contents())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.LSN != LSN(i+1) {
			t.Errorf("record %d LSN = %d, want %d", i, r.LSN, i+1)
		}
		if r.Kind != recs[i].Kind || r.Operator != recs[i].Operator ||
			r.Event != recs[i].Event || r.Value != recs[i].Value ||
			string(r.Aux) != string(recs[i].Aux) {
			t.Errorf("record %d mismatch: got %+v want %+v", i, r, recs[i])
		}
	}
}

func TestScanDetectsCorruption(t *testing.T) {
	l, mem, _ := newMemLog(t)
	if _, err := l.AppendSync([]Record{{Kind: KindRandom, Value: 42}}); err != nil {
		t.Fatal(err)
	}
	data := mem.Contents()
	data[len(data)-1] ^= 0xFF
	if _, err := Scan(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Scan of corrupted data = %v, want ErrCorrupt", err)
	}
}

func TestScanTruncatedTail(t *testing.T) {
	l, mem, _ := newMemLog(t)
	if _, err := l.AppendSync([]Record{{Kind: KindRandom, Value: 1}, {Kind: KindRandom, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	data := mem.Contents()
	got, err := Scan(data[:len(data)-3])
	if err == nil {
		t.Fatal("Scan of truncated log succeeded")
	}
	// The intact prefix must still be returned.
	if len(got) != 1 || got[0].Value != 1 {
		t.Fatalf("intact prefix = %+v", got)
	}
}

func TestConcurrentAppendsKeepLSNOrder(t *testing.T) {
	l, mem, _ := newMemLog(t)
	const workers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.AppendSync([]Record{{Kind: KindRandom, Operator: uint32(w), Value: uint64(i)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := Scan(mem.Contents())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*per {
		t.Fatalf("scanned %d records, want %d", len(got), workers*per)
	}
	// Writer-pool batches must have preserved global LSN order on disk.
	for i, r := range got {
		if r.LSN != LSN(i+1) {
			t.Fatalf("record %d has LSN %d: disk order != LSN order", i, r.LSN)
		}
	}
	// Per-operator Values must be in order too.
	next := make([]uint64, workers)
	for _, r := range got {
		if r.Value != next[r.Operator] {
			t.Fatalf("operator %d saw value %d, want %d", r.Operator, r.Value, next[r.Operator])
		}
		next[r.Operator]++
	}
}

func TestTruncateAndReplay(t *testing.T) {
	l, mem, _ := newMemLog(t)
	if _, err := l.AppendSync([]Record{
		{Kind: KindRandom, Operator: 1, Value: 10},
		{Kind: KindRandom, Operator: 1, Value: 11},
		{Kind: KindRandom, Operator: 2, Value: 20},
	}); err != nil {
		t.Fatal(err)
	}
	// Checkpoint operator 1 covering LSN 2.
	ch := make(chan error, 1)
	if err := l.MarkCheckpoint(1, 2, func(err error) { ch <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if l.TruncatedLSN() != 2 {
		t.Fatalf("TruncatedLSN = %d, want 2", l.TruncatedLSN())
	}
	if _, err := l.AppendSync([]Record{{Kind: KindRandom, Operator: 1, Value: 12}}); err != nil {
		t.Fatal(err)
	}
	records, err := Scan(mem.Contents())
	if err != nil {
		t.Fatal(err)
	}
	// Operator 1 replays only records after its checkpoint.
	rep := Replay(records, 1)
	if len(rep) != 1 || rep[0].Value != 12 {
		t.Fatalf("Replay(op 1) = %+v, want single record value 12", rep)
	}
	// Operator 2 has no checkpoint: replays everything of its own.
	rep2 := Replay(records, 2)
	if len(rep2) != 1 || rep2[0].Value != 20 {
		t.Fatalf("Replay(op 2) = %+v", rep2)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, _, _ := newMemLog(t)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Record{{Kind: KindRandom}}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindInput:          "input",
		KindRandom:         "random",
		KindTime:           "time",
		KindCustom:         "custom",
		KindCheckpointMark: "checkpoint",
		Kind(99):           "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestQuickEncodeDecode property-tests the record codec.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(lsn uint64, kind uint8, op uint32, src uint32, seq uint64, val uint64, aux []byte) bool {
		r := Record{
			LSN:      LSN(lsn),
			Kind:     Kind(kind),
			Operator: op,
			Event:    event.ID{Source: event.SourceID(src), Seq: event.Seq(seq)},
			Value:    val,
			Aux:      aux,
		}
		buf := encode(nil, r)
		got, n, err := decodeOne(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if len(aux) == 0 {
			r.Aux = nil
		}
		return got.LSN == r.LSN && got.Kind == r.Kind && got.Operator == r.Operator &&
			got.Event == r.Event && got.Value == r.Value && string(got.Aux) == string(r.Aux)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendSync(b *testing.B) {
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	l := New(pool)
	rec := []Record{{Kind: KindRandom, Operator: 1, Value: 42}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendSync(rec); err != nil {
			b.Fatal(err)
		}
	}
}
