// Package wal implements the decision log: an append-only, checksummed log
// of the non-deterministic decisions an operator takes while processing
// events (paper §2.2, §2.4).
//
// Three classes of decisions are logged so that replay after a failure
// reproduces the exact pre-failure execution:
//
//   - input-order decisions: which input stream the next event was taken
//     from (unions, joins, and any order-sensitive operator);
//   - random draws: values obtained from the operator's PRNG;
//   - time reads: physical-time observations used in processing.
//
// Appends are asynchronous — they are handed to a storage.Pool and the
// caller is notified when the records are stable. Non-speculative operators
// block their outputs on that notification; speculative operators send
// outputs immediately and finalize them on notification (the paper's core
// latency optimization).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"streammine/internal/event"
	"streammine/internal/metrics"
	"streammine/internal/storage"
)

// Kind classifies a logged decision.
type Kind uint8

// Decision kinds. KindCheckpointMark records that a checkpoint covering all
// prior records is stable, which allows pruning the log up to that point.
const (
	KindInput Kind = iota + 1
	KindRandom
	KindTime
	KindCustom
	KindCheckpointMark
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindRandom:
		return "random"
	case KindTime:
		return "time"
	case KindCustom:
		return "custom"
	case KindCheckpointMark:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// LSN is a log sequence number: the 1-based index of a record in the log.
type LSN uint64

// Record is one logged decision.
type Record struct {
	// LSN is assigned by Append; zero on input.
	LSN LSN
	// Kind classifies the decision.
	Kind Kind
	// Operator identifies the operator instance that took the decision.
	Operator uint32
	// Event is the event whose processing took the decision.
	Event event.ID
	// Value holds the decision itself: the input-stream index for
	// KindInput, the drawn value for KindRandom, the tick for KindTime,
	// the covered LSN for KindCheckpointMark.
	Value uint64
	// Aux carries free-form payload for KindCustom.
	Aux []byte
}

// record layout:
//
//	length  uint32  (bytes after this field, including crc)
//	crc     uint32  (over everything after the crc field)
//	lsn     uint64
//	kind    uint8
//	op      uint32
//	evsrc   uint32
//	evseq   uint64
//	value   uint64
//	auxlen  uint32
//	aux     bytes
const recordFixed = 8 + 8 + 1 + 4 + 4 + 8 + 8 + 4

var (
	// ErrCorrupt is returned by Scan when a record fails its checksum or
	// is structurally invalid.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed is returned for appends after Close.
	ErrClosed = errors.New("wal: closed")
)

// encode appends the binary form of r (with the given LSN) to dst.
func encode(dst []byte, r Record) []byte {
	body := recordFixed - 8 + len(r.Aux) // everything after length+crc
	var hdr [recordFixed]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(4+body)) // crc + body
	// crc filled below
	binary.LittleEndian.PutUint64(hdr[8:], uint64(r.LSN))
	hdr[16] = byte(r.Kind)
	binary.LittleEndian.PutUint32(hdr[17:], r.Operator)
	binary.LittleEndian.PutUint32(hdr[21:], uint32(r.Event.Source))
	binary.LittleEndian.PutUint64(hdr[25:], uint64(r.Event.Seq))
	binary.LittleEndian.PutUint64(hdr[33:], r.Value)
	binary.LittleEndian.PutUint32(hdr[41:], uint32(len(r.Aux)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:])
	crc.Write(r.Aux)
	binary.LittleEndian.PutUint32(hdr[4:], crc.Sum32())
	dst = append(dst, hdr[:]...)
	return append(dst, r.Aux...)
}

// decodeOne parses one record from the front of src, returning the record
// and bytes consumed.
func decodeOne(src []byte) (Record, int, error) {
	if len(src) < 8 {
		return Record{}, 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	length := binary.LittleEndian.Uint32(src[0:])
	if int(length) < recordFixed-4 || len(src) < 4+int(length) {
		return Record{}, 0, fmt.Errorf("%w: bad length %d", ErrCorrupt, length)
	}
	wantCRC := binary.LittleEndian.Uint32(src[4:])
	body := src[8 : 4+length]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := Record{
		LSN:      LSN(binary.LittleEndian.Uint64(body[0:])),
		Kind:     Kind(body[8]),
		Operator: binary.LittleEndian.Uint32(body[9:]),
		Event: event.ID{
			Source: event.SourceID(binary.LittleEndian.Uint32(body[13:])),
			Seq:    event.Seq(binary.LittleEndian.Uint64(body[17:])),
		},
		Value: binary.LittleEndian.Uint64(body[25:]),
	}
	auxLen := binary.LittleEndian.Uint32(body[33:])
	if int(auxLen) != len(body)-37 {
		return Record{}, 0, fmt.Errorf("%w: aux length mismatch", ErrCorrupt)
	}
	if auxLen > 0 {
		r.Aux = make([]byte, auxLen)
		copy(r.Aux, body[37:])
	}
	return r, 4 + int(length), nil
}

// Scan decodes all records in data (as produced by appends through a
// MemDisk or FileDisk). It returns records in log order.
func Scan(data []byte) ([]Record, error) {
	var out []Record
	for len(data) > 0 {
		r, n, err := decodeOne(data)
		if err != nil {
			return out, err
		}
		out = append(out, r)
		data = data[n:]
	}
	return out, nil
}

// LogMetrics is the optional instrumentation hook for a Log. All fields
// may be shared by several logs (per-engine aggregation); nil fields are
// skipped. The append latency is measured from submission to the stable
// notification, i.e. it includes queueing in the storage pool — the
// quantity the paper's speculation hides (§2.4).
type LogMetrics struct {
	// AppendLatency observes submit→stable per batch.
	AppendLatency *metrics.HDR
	// Appends counts submitted batches.
	Appends *metrics.Counter
	// Records counts submitted records.
	Records *metrics.Counter
	// Errors counts batches whose stable notification reported failure.
	Errors *metrics.Counter
}

// Log is the asynchronous decision log for one node. It is safe for
// concurrent use by all operators hosted on the node.
type Log struct {
	pool *storage.Pool

	nextLSN   atomic.Uint64
	stableLSN atomic.Uint64
	truncated atomic.Uint64

	met atomic.Pointer[LogMetrics]

	mu     sync.Mutex
	closed bool
}

// New creates a log writing through pool. The caller retains ownership of
// the pool (several logs may share one pool, as in the paper's two-
// components-one-process experiment).
func New(pool *storage.Pool) *Log {
	return &Log{pool: pool}
}

// Append assigns LSNs to recs, submits them for stable storage, and
// returns the LSN of the last record. done (optional) is called when the
// records are stable or have failed.
//
// LSN assignment and submission happen atomically with respect to other
// Append calls, so LSN order equals submission order.
func (l *Log) Append(recs []Record, done func(error)) (LSN, error) {
	if len(recs) == 0 {
		if done != nil {
			done(nil)
		}
		return LSN(l.nextLSN.Load()), nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	var buf []byte
	var last LSN
	for i := range recs {
		recs[i].LSN = LSN(l.nextLSN.Add(1))
		last = recs[i].LSN
		buf = encode(buf, recs[i])
	}
	met := l.met.Load()
	var submitted time.Time
	if met != nil {
		submitted = time.Now()
		if met.Appends != nil {
			met.Appends.Inc()
		}
		if met.Records != nil {
			met.Records.Add(uint64(len(recs)))
		}
	}
	err := l.pool.Submit(storage.Request{
		Payload: buf,
		Done: func(err error) {
			if err == nil {
				advance(&l.stableLSN, uint64(last))
			}
			if met != nil {
				if err != nil && met.Errors != nil {
					met.Errors.Inc()
				}
				if met.AppendLatency != nil {
					met.AppendLatency.Record(time.Since(submitted))
				}
			}
			if done != nil {
				done(err)
			}
		},
	})
	l.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("submit log batch: %w", err)
	}
	return last, nil
}

// AppendSync appends and blocks until the records are stable.
func (l *Log) AppendSync(recs []Record) (LSN, error) {
	ch := make(chan error, 1)
	lsn, err := l.Append(recs, func(err error) { ch <- err })
	if err != nil {
		return 0, err
	}
	if err := <-ch; err != nil {
		return 0, err
	}
	return lsn, nil
}

// advance raises a monotonic watermark to at least v.
func advance(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SetMetrics attaches (or replaces) the log's instrumentation. Safe to
// call concurrently with appends; in-flight batches keep the hook they
// were submitted under.
func (l *Log) SetMetrics(m *LogMetrics) { l.met.Store(m) }

// StableLSN returns the highest LSN known stable. Records with LSN <=
// StableLSN will survive a crash.
func (l *Log) StableLSN() LSN { return LSN(l.stableLSN.Load()) }

// UnstableLag returns the number of appended records not yet known
// stable — the stable-LSN lag a scrape-time gauge exposes.
func (l *Log) UnstableLag() uint64 {
	next := l.nextLSN.Load() // last assigned LSN
	stable := l.stableLSN.Load()
	if next <= stable {
		return 0
	}
	return next - stable
}

// NextLSN returns the LSN that the next appended record will receive.
func (l *Log) NextLSN() LSN { return LSN(l.nextLSN.Load() + 1) }

// AdvanceLSN raises the LSN cursor (and the stable watermark) to at least
// last. A recovered node calls it with the highest LSN found in its
// durable records, so a fresh Log over a reopened store continues the LSN
// sequence instead of re-issuing low LSNs that would break the log-order
// invariant for future recoveries.
func (l *Log) AdvanceLSN(last LSN) {
	advance(&l.nextLSN, uint64(last))
	advance(&l.stableLSN, uint64(last))
}

// Truncate marks all records with LSN <= upTo as prunable (a checkpoint
// covers them). Truncation is monotonic.
func (l *Log) Truncate(upTo LSN) {
	advance(&l.truncated, uint64(upTo))
}

// TruncatedLSN returns the highest pruned LSN.
func (l *Log) TruncatedLSN() LSN { return LSN(l.truncated.Load()) }

// MarkCheckpoint appends a KindCheckpointMark record covering coveredLSN
// and, once it is stable, truncates the log up to coveredLSN.
func (l *Log) MarkCheckpoint(op uint32, coveredLSN LSN, done func(error)) error {
	_, err := l.Append([]Record{{
		Kind:     KindCheckpointMark,
		Operator: op,
		Value:    uint64(coveredLSN),
	}}, func(err error) {
		if err == nil {
			l.Truncate(coveredLSN)
		}
		if done != nil {
			done(err)
		}
	})
	return err
}

// Close marks the log closed. It does not close the underlying pool.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Replay filters scanned records down to those relevant for recovering
// operator op: records after the last stable checkpoint mark for that
// operator, in order. It is the read-side counterpart of MarkCheckpoint.
func Replay(records []Record, op uint32) []Record {
	cut := LSN(0)
	for _, r := range records {
		if r.Kind == KindCheckpointMark && r.Operator == op {
			if c := LSN(r.Value); c > cut {
				cut = c
			}
		}
	}
	var out []Record
	for _, r := range records {
		if r.Operator == op && r.Kind != KindCheckpointMark && r.LSN > cut {
			out = append(out, r)
		}
	}
	return out
}
