package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"streammine/internal/metrics"
)

// SegmentStore is a file-backed stable-storage point for the decision log:
// an append-only directory of fixed-size-bounded segments, each fsynced on
// write. It implements storage.Disk, so it plugs directly into the writer
// pool, and adds what a real deployment needs beyond a flat file: scanning
// all segments in order for recovery and pruning segments that a
// checkpoint has made redundant.
type SegmentStore struct {
	dir     string
	maxSize int64

	mu      sync.Mutex
	active  *os.File
	actSize int64
	actIdx  int
	closed  bool
}

// segPrefix and segSuffix name segment files: seg-000042.wal.
const (
	segPrefix = "seg-"
	segSuffix = ".wal"
)

// OpenSegmentStore creates (or reopens) a segment directory. maxSegment
// bounds each segment's size in bytes (minimum 4 KiB; writes larger than
// the bound get a segment of their own).
func OpenSegmentStore(dir string, maxSegment int64) (*SegmentStore, error) {
	if maxSegment < 4096 {
		maxSegment = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create wal dir: %w", err)
	}
	s := &SegmentStore{dir: dir, maxSize: maxSegment}
	idxs, err := s.segmentIndexes()
	if err != nil {
		return nil, err
	}
	next := 1
	if len(idxs) > 0 {
		next = idxs[len(idxs)-1] + 1
	}
	if err := s.openSegment(next); err != nil {
		return nil, err
	}
	return s, nil
}

// segmentIndexes lists existing segment numbers in ascending order.
func (s *SegmentStore) segmentIndexes() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("read wal dir: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, segPrefix+"%06d"+segSuffix, &idx); err != nil {
			continue
		}
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

func (s *SegmentStore) segPath(idx int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segPrefix, idx, segSuffix))
}

// openSegment starts a fresh active segment. Caller holds no lock or the
// store lock as appropriate (constructor and rotate paths).
func (s *SegmentStore) openSegment(idx int) error {
	f, err := os.OpenFile(s.segPath(idx), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("open segment %d: %w", idx, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("stat segment %d: %w", idx, err)
	}
	s.active = f
	s.actIdx = idx
	s.actSize = st.Size()
	return nil
}

// Write appends p to the active segment (rotating first if it is full)
// and fsyncs. Implements storage.Disk.
func (s *SegmentStore) Write(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.actSize > 0 && s.actSize+int64(len(p)) > s.maxSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := s.active.Write(p); err != nil {
		return fmt.Errorf("append segment %d: %w", s.actIdx, err)
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("sync segment %d: %w", s.actIdx, err)
	}
	s.actSize += int64(len(p))
	return nil
}

func (s *SegmentStore) rotateLocked() error {
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("close segment %d: %w", s.actIdx, err)
	}
	return s.openSegment(s.actIdx + 1)
}

// Close syncs and closes the active segment. Implements storage.Disk.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.active.Sync(); err != nil {
		return err
	}
	return s.active.Close()
}

// Scan reads every segment in order and decodes all records — the
// recovery read path over real files.
func (s *SegmentStore) Scan() ([]Record, error) {
	s.mu.Lock()
	// Flush the active segment so the scan sees everything.
	if !s.closed {
		if err := s.active.Sync(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	s.mu.Unlock()
	idxs, err := s.segmentIndexes()
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, idx := range idxs {
		data, err := os.ReadFile(s.segPath(idx))
		if err != nil {
			return nil, fmt.Errorf("read segment %d: %w", idx, err)
		}
		recs, err := Scan(data)
		if err != nil {
			// Return everything intact so far: a crash can tear the last
			// append, and recovery may choose to treat the prefix as the log.
			return append(out, recs...), fmt.Errorf("segment %d: %w", idx, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// Prune deletes whole segments whose records all have LSN <= upTo (a
// covering checkpoint makes them redundant). The active segment is never
// deleted. Returns the number of segments removed.
func (s *SegmentStore) Prune(upTo LSN) (int, error) {
	idxs, err := s.segmentIndexes()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	activeIdx := s.actIdx
	s.mu.Unlock()
	removed := 0
	for _, idx := range idxs {
		if idx == activeIdx {
			continue
		}
		data, err := os.ReadFile(s.segPath(idx))
		if err != nil {
			return removed, fmt.Errorf("read segment %d: %w", idx, err)
		}
		recs, err := Scan(data)
		if err != nil {
			return removed, fmt.Errorf("segment %d: %w", idx, err)
		}
		prunable := true
		for _, r := range recs {
			if r.LSN > upTo {
				prunable = false
				break
			}
		}
		if !prunable {
			continue
		}
		if err := os.Remove(s.segPath(idx)); err != nil {
			return removed, fmt.Errorf("remove segment %d: %w", idx, err)
		}
		removed++
	}
	return removed, nil
}

// Segments reports the current number of segment files.
func (s *SegmentStore) Segments() (int, error) {
	idxs, err := s.segmentIndexes()
	return len(idxs), err
}

// RegisterMetrics exposes the store's on-disk segment count as the
// wal_segments gauge on reg (refreshed at scrape time).
func (s *SegmentStore) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("wal_segments",
		"Decision-log segment files currently on disk.", nil,
		func() float64 {
			n, err := s.Segments()
			if err != nil {
				return -1
			}
			return float64(n)
		})
}
