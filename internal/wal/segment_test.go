package wal

import (
	"errors"
	"path/filepath"
	"testing"

	"streammine/internal/storage"
)

func openStore(t *testing.T, maxSegment int64) (*SegmentStore, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := OpenSegmentStore(dir, maxSegment)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestSegmentStoreThroughLog(t *testing.T) {
	store, _ := openStore(t, 1<<20)
	pool := storage.NewPool([]storage.Disk{store})
	defer pool.Close()
	l := New(pool)
	for i := uint64(1); i <= 20; i++ {
		if _, err := l.AppendSync([]Record{{Kind: KindRandom, Operator: 3, Value: i}}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("scanned %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) || r.Value != uint64(i+1) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	store, _ := openStore(t, 4096)
	payload := make([]byte, 1500)
	for i := 0; i < 10; i++ {
		if err := store.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	n, err := store.Segments()
	if err != nil {
		t.Fatal(err)
	}
	// 10 × 1500 B with a 4 KiB cap → at least 4 segments.
	if n < 4 {
		t.Fatalf("segments = %d, want >= 4", n)
	}
}

func TestSegmentReopenContinues(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s1, err := OpenSegmentStore(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rec := encode(nil, Record{LSN: 1, Kind: KindRandom, Value: 7})
	if err := s1.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmentStore(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec2 := encode(nil, Record{LSN: 2, Kind: KindTime, Value: 9})
	if err := s2.Write(rec2); err != nil {
		t.Fatal(err)
	}
	recs, err := s2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].LSN != 1 || recs[1].LSN != 2 {
		t.Fatalf("after reopen scan = %+v", recs)
	}
}

func TestSegmentPrune(t *testing.T) {
	store, _ := openStore(t, 4096)
	// Write records with growing LSNs; each ~3 KiB batch fills most of a
	// 4 KiB segment, so every batch lands in its own segment.
	lsn := LSN(0)
	for seg := 0; seg < 5; seg++ {
		var buf []byte
		for r := 0; r < 66; r++ {
			lsn++
			buf = encode(buf, Record{LSN: lsn, Kind: KindRandom, Value: uint64(lsn)})
		}
		if err := store.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := store.Segments()
	if before < 2 {
		t.Fatalf("segments = %d, want >= 2 for a meaningful prune", before)
	}
	// Prune everything at or below half the records.
	removed, err := store.Prune(lsn / 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing pruned")
	}
	recs, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	// All surviving segments keep their records; the earliest surviving
	// record must be <= cut+segment granularity, and the latest must be
	// intact.
	if recs[len(recs)-1].LSN != lsn {
		t.Fatalf("latest record lost: %d != %d", recs[len(recs)-1].LSN, lsn)
	}
	for _, r := range recs {
		if r.LSN == 0 {
			t.Fatal("corrupt record after prune")
		}
	}
	// Records above the cut must all survive.
	seen := make(map[LSN]bool, len(recs))
	for _, r := range recs {
		seen[r.LSN] = true
	}
	for l := lsn/2 + 1; l <= lsn; l++ {
		if !seen[l] {
			t.Fatalf("record %d above the cut was pruned", l)
		}
	}
}

func TestSegmentWriteAfterClose(t *testing.T) {
	store, _ := openStore(t, 4096)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestSegmentRecoveryPath exercises the full loop: log through the pool
// into segments, scan from disk, and build a per-operator replay.
func TestSegmentRecoveryPath(t *testing.T) {
	store, _ := openStore(t, 8192)
	pool := storage.NewPool([]storage.Disk{store})
	defer pool.Close()
	l := New(pool)
	for i := uint64(1); i <= 10; i++ {
		if _, err := l.AppendSync([]Record{{Kind: KindInput, Operator: 7, Value: i % 2}}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint mark covering the first 6 records.
	if _, err := l.AppendSync([]Record{{Kind: KindCheckpointMark, Operator: 7, Value: 6}}); err != nil {
		t.Fatal(err)
	}
	recs, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	replay := Replay(recs, 7)
	if len(replay) != 4 {
		t.Fatalf("replay = %d records, want 4 (LSN 7..10)", len(replay))
	}
	for i, r := range replay {
		if r.LSN != LSN(7+i) {
			t.Fatalf("replay[%d].LSN = %d", i, r.LSN)
		}
	}
}
