// Package vclock provides the logical clocks used across the engine: a
// monotonic tick source for application timestamps, a watermark tracker
// that computes the low-water mark across multiple input streams, and a
// controllable clock for deterministic tests.
//
// Physical-time reads taken during event processing are non-deterministic
// decisions: when an operator asks for the time through its context the
// value is logged (paper §2.2). The Clock interface lets tests and the
// recovery path substitute replayed values.
//
// Entry points:
//
//   - Clock is the timestamp source interface the engine consumes
//     (core.Options.Clock).
//   - NewWall returns the production Clock: wall time in milliseconds.
//   - NewManual returns a test Clock advanced explicitly by the caller.
//   - NewTicker wraps a Clock into a strictly monotonic per-source tick
//     stream, so simultaneous events still get distinct, ordered
//     timestamps.
//   - NewWatermark tracks per-input progress and reports the low-water
//     mark across all inputs — the threshold below which window
//     operators may safely close.
package vclock
