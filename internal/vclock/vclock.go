package vclock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies timestamps in ticks. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current logical time in ticks.
	Now() int64
}

// Wall is a Clock backed by the OS monotonic clock, reporting nanoseconds
// since the clock was created.
type Wall struct {
	start time.Time
}

var _ Clock = (*Wall)(nil)

// NewWall returns a wall clock anchored at the current instant.
func NewWall() *Wall {
	return &Wall{start: time.Now()}
}

// Now returns nanoseconds elapsed since NewWall.
func (w *Wall) Now() int64 {
	return time.Since(w.start).Nanoseconds()
}

// Manual is a Clock whose time only moves when Advance or Set is called.
// It makes time-dependent behaviour deterministic in tests.
type Manual struct {
	now atomic.Int64
}

var _ Clock = (*Manual)(nil)

// NewManual returns a Manual clock starting at start ticks.
func NewManual(start int64) *Manual {
	m := &Manual{}
	m.now.Store(start)
	return m
}

// Now returns the current manual time.
func (m *Manual) Now() int64 { return m.now.Load() }

// Advance moves the clock forward by d ticks and returns the new time.
func (m *Manual) Advance(d int64) int64 { return m.now.Add(d) }

// Set jumps the clock to t ticks.
func (m *Manual) Set(t int64) { m.now.Store(t) }

// Ticker hands out strictly increasing timestamps. Sources use it to
// assign event timestamps: even if two events are created in the same
// nanosecond they receive distinct, ordered ticks.
type Ticker struct {
	last atomic.Int64
	c    Clock
}

// NewTicker returns a Ticker drawing from c.
func NewTicker(c Clock) *Ticker {
	return &Ticker{c: c}
}

// Next returns a timestamp strictly greater than any previous Next result
// and not less than the underlying clock's current time.
func (t *Ticker) Next() int64 {
	for {
		now := t.c.Now()
		last := t.last.Load()
		if now <= last {
			now = last + 1
		}
		if t.last.CompareAndSwap(last, now) {
			return now
		}
	}
}

// Watermark tracks the minimum observed timestamp frontier across a fixed
// set of input streams. An operator's watermark is the largest timestamp W
// such that every input has delivered all events with timestamp <= W; it
// drives time-window aggregation closing.
type Watermark struct {
	mu       sync.Mutex
	frontier []int64
	min      int64
}

// NewWatermark creates a tracker for n inputs, all starting at -1 (nothing
// delivered).
func NewWatermark(n int) *Watermark {
	w := &Watermark{frontier: make([]int64, n), min: -1}
	for i := range w.frontier {
		w.frontier[i] = -1
	}
	return w
}

// Observe records that input i has delivered everything up to ts. Frontiers
// never move backwards; stale observations are ignored. It returns the new
// global watermark.
func (w *Watermark) Observe(i int, ts int64) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ts > w.frontier[i] {
		w.frontier[i] = ts
	}
	min := w.frontier[0]
	for _, f := range w.frontier[1:] {
		if f < min {
			min = f
		}
	}
	w.min = min
	return min
}

// Current returns the global watermark (minimum frontier).
func (w *Watermark) Current() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.min
}
