package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestWallMonotonic(t *testing.T) {
	w := NewWall()
	a := w.Now()
	time.Sleep(time.Millisecond)
	b := w.Now()
	if b <= a {
		t.Fatalf("wall clock not monotonic: %d then %d", a, b)
	}
}

func TestManual(t *testing.T) {
	m := NewManual(100)
	if m.Now() != 100 {
		t.Fatalf("Now = %d, want 100", m.Now())
	}
	if got := m.Advance(5); got != 105 {
		t.Fatalf("Advance returned %d, want 105", got)
	}
	m.Set(42)
	if m.Now() != 42 {
		t.Fatalf("after Set, Now = %d, want 42", m.Now())
	}
}

func TestTickerStrictlyIncreasing(t *testing.T) {
	m := NewManual(0)
	tick := NewTicker(m)
	prev := int64(-1)
	for i := 0; i < 100; i++ {
		got := tick.Next()
		if got <= prev {
			t.Fatalf("tick %d: %d <= previous %d", i, got, prev)
		}
		prev = got
	}
	// Clock jumps forward: ticker follows.
	m.Set(1000)
	if got := tick.Next(); got < 1000 {
		t.Fatalf("after clock jump, Next = %d, want >= 1000", got)
	}
}

func TestTickerConcurrentUnique(t *testing.T) {
	tick := NewTicker(NewManual(0))
	const workers, perWorker = 8, 500
	results := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int64, perWorker)
			for i := range out {
				out[i] = tick.Next()
			}
			results[w] = out
		}()
	}
	wg.Wait()
	seen := make(map[int64]bool, workers*perWorker)
	for _, out := range results {
		for _, v := range out {
			if seen[v] {
				t.Fatalf("duplicate tick %d", v)
			}
			seen[v] = true
		}
	}
}

func TestWatermark(t *testing.T) {
	w := NewWatermark(3)
	if w.Current() != -1 {
		t.Fatalf("initial watermark = %d, want -1", w.Current())
	}
	w.Observe(0, 10)
	w.Observe(1, 20)
	if got := w.Current(); got != -1 {
		t.Fatalf("watermark with one silent input = %d, want -1", got)
	}
	if got := w.Observe(2, 5); got != 5 {
		t.Fatalf("watermark = %d, want 5", got)
	}
	// Stale observation must not regress the frontier.
	if got := w.Observe(2, 3); got != 5 {
		t.Fatalf("stale observation moved watermark to %d", got)
	}
	if got := w.Observe(2, 30); got != 10 {
		t.Fatalf("watermark = %d, want 10", got)
	}
}

func TestWatermarkSingleInput(t *testing.T) {
	w := NewWatermark(1)
	if got := w.Observe(0, 7); got != 7 {
		t.Fatalf("watermark = %d, want 7", got)
	}
}
