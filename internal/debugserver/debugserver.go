// Package debugserver exposes the engine's observability surface over
// HTTP: Prometheus text metrics (/metrics), a liveness probe (/healthz)
// and the standard net/http/pprof profiling handlers (/debug/pprof/).
// It is opt-in — binaries start it only when -debug-addr is given — and
// runs entirely off the hot path: scraping reads atomics, it never locks
// engine structures for longer than a counter read.
//
// docs/OBSERVABILITY.md documents every series served here.
package debugserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strings"
	"sync"
	"time"

	"streammine/internal/metrics"
)

// Server serves /metrics, /healthz and /debug/pprof/* on one listener.
type Server struct {
	reg         *metrics.Registry
	health      func() error
	srv         *http.Server
	ln          net.Listener
	mu          sync.Mutex
	degraded    func() []string
	pressure    func() string
	speculation func() any
	cluster     func() any
	healthView  func() any
	recoveryFn  func() any
	frDump      func() any
	frSnap      func() (string, error)
	draining    func() bool
	chaos       func(url.Values) (string, error)
}

// New builds a server over reg. health may be nil; when set it is polled
// by /healthz and a non-nil error turns the probe into a 503 with the
// error text in the body.
func New(reg *metrics.Registry, health func() error) *Server {
	s := &Server{reg: reg, health: health}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/speculation", s.handleSpeculation)
	mux.HandleFunc("/debug/cluster", s.handleCluster)
	mux.HandleFunc("/debug/health", s.handleHealth)
	mux.HandleFunc("/debug/recovery", s.handleRecovery)
	mux.HandleFunc("/debug/flightrec", s.handleFlightRec)
	mux.HandleFunc("/debug/chaos", s.handleChaos)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Start binds addr ("host:port"; ":0" picks a free port) and serves in
// the background. It returns the bound address, which differs from addr
// when the port was 0.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugserver: listen %s: %w", addr, err)
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// SetDegraded installs a liveness-dependency probe: when fn returns a
// non-empty list of unreachable peers (e.g. a cluster worker whose
// coordinator heartbeats stopped, or a severed bridge), /healthz stays
// 200 — the process itself is alive — but reports "degraded: <peers>"
// instead of "ok" so operators and orchestrators can see partial failure.
func (s *Server) SetDegraded(fn func() []string) {
	s.mu.Lock()
	s.degraded = fn
	s.mu.Unlock()
}

// SetPressure installs a flow-control snapshot provider: its output (one
// line per congested element, or a JSON blob — the caller chooses) is
// appended to the /healthz body after the liveness line, so queue depth
// and credit state are visible from the same probe orchestrators already
// hit. Empty output appends nothing.
func (s *Server) SetPressure(fn func() string) {
	s.mu.Lock()
	s.pressure = fn
	s.mu.Unlock()
}

// SetDraining installs a graceful-shutdown probe: while fn returns true,
// /healthz answers 503 "draining" so load balancers and orchestrators
// stop routing new work here before the process exits. Draining takes
// precedence over the degraded and pressure annotations — a draining
// process wants traffic gone, not diagnosed.
func (s *Server) SetDraining(fn func() bool) {
	s.mu.Lock()
	s.draining = fn
	s.mu.Unlock()
}

// SetSpeculation installs the speculation-waste snapshot provider served
// as JSON at /debug/speculation (typically profiler.Summary — the
// per-operator waste ledgers plus the conflict heatmap). Unset, the route
// answers 404 so scrapers can tell "profiling off" from "empty profile".
func (s *Server) SetSpeculation(fn func() any) {
	s.mu.Lock()
	s.speculation = fn
	s.mu.Unlock()
}

// SetCluster installs the cluster-wide rollup provider served as JSON at
// /debug/cluster (the coordinator's merged per-worker waste summaries and
// membership view). Unset, the route answers 404.
func (s *Server) SetCluster(fn func() any) {
	s.mu.Lock()
	s.cluster = fn
	s.mu.Unlock()
}

// SetChaos installs the runtime fault-injection control handler served
// at /debug/chaos (typically chaos.Handle). A GET reports the current
// fault state; a POST applies the query/form parameters as the new
// configuration. Unset, the route answers 404 — binaries opt in with the
// -chaos flag, so a production process never accepts injected faults.
func (s *Server) SetChaos(fn func(url.Values) (string, error)) {
	s.mu.Lock()
	s.chaos = fn
	s.mu.Unlock()
}

// SetHealth installs the live cluster-health snapshot provider served as
// JSON at /debug/health (the coordinator's SLO budget attribution,
// backpressure root-cause chains and straggler flags). Unset, the route
// answers 404 — only coordinators have a health model.
func (s *Server) SetHealth(fn func() any) {
	s.mu.Lock()
	s.healthView = fn
	s.mu.Unlock()
}

// SetFlightRec installs the flight-recorder surface at /debug/flightrec:
// GET serves the in-memory ring as a JSON dump; POST forces a snapshot to
// disk and reports the written path, so an operator (or the campaign
// runner) can capture evidence from a live process before killing it.
// Unset, the route answers 404 — binaries opt in with -flightrec.
func (s *Server) SetFlightRec(get func() any, snap func() (string, error)) {
	s.mu.Lock()
	s.frDump = get
	s.frSnap = snap
	s.mu.Unlock()
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fn := s.healthView
	s.mu.Unlock()
	serveJSON(w, r, fn)
}

// SetRecovery installs the recovery anatomy report served as JSON at
// /debug/recovery (per-incident phase timelines with attribution).
// Unset, the route answers 404 — only coordinators stitch incidents.
func (s *Server) SetRecovery(fn func() any) {
	s.mu.Lock()
	s.recoveryFn = fn
	s.mu.Unlock()
}

func (s *Server) handleRecovery(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fn := s.recoveryFn
	s.mu.Unlock()
	serveJSON(w, r, fn)
}

func (s *Server) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	get, snap := s.frDump, s.frSnap
	s.mu.Unlock()
	switch r.Method {
	case http.MethodGet, "":
		serveJSON(w, r, get)
	case http.MethodPost:
		if snap == nil {
			jsonError(w, http.StatusNotFound, "flight recorder not enabled")
			return
		}
		path, err := snap()
		if err != nil {
			jsonError(w, http.StatusInternalServerError, "flightrec snapshot: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\n  \"path\": %q\n}\n", path)
	default:
		jsonError(w, http.StatusMethodNotAllowed, "method %s not allowed; use GET or POST", r.Method)
	}
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fn := s.chaos
	s.mu.Unlock()
	if fn == nil {
		jsonError(w, http.StatusNotFound, "chaos injection not enabled (start with -chaos)")
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodPost, "":
	default:
		jsonError(w, http.StatusMethodNotAllowed, "method %s not allowed; use GET or POST", r.Method)
		return
	}
	var params url.Values
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			jsonError(w, http.StatusBadRequest, "bad form: %v", err)
			return
		}
		params = r.Form
	}
	state, err := fn(params)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, state)
}

func (s *Server) handleSpeculation(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fn := s.speculation
	s.mu.Unlock()
	serveJSON(w, r, fn)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fn := s.cluster
	s.mu.Unlock()
	serveJSON(w, r, fn)
}

func serveJSON(w http.ResponseWriter, r *http.Request, fn func() any) {
	switch r.Method {
	case http.MethodGet, "":
	default:
		jsonError(w, http.StatusMethodNotAllowed, "method %s not allowed; use GET", r.Method)
		return
	}
	if fn == nil {
		jsonError(w, http.StatusNotFound, "not enabled on this process")
		return
	}
	v := fn()
	if v == nil {
		jsonError(w, http.StatusNotFound, "no data yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// jsonError writes the uniform debug-endpoint error body: every
// /debug/* failure (404 route unset, 405 wrong method, 400 bad input)
// answers `{"error": "..."}` with an application/json Content-Type, so
// pollers parse one shape instead of sniffing plain-text bodies.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining != nil && draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.health != nil {
		if err := s.health(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	s.mu.Lock()
	degraded := s.degraded
	pressure := s.pressure
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	down := []string(nil)
	if degraded != nil {
		down = degraded()
	}
	if len(down) > 0 {
		fmt.Fprintf(w, "degraded: %s\n", strings.Join(down, ", "))
	} else {
		fmt.Fprintln(w, "ok")
	}
	if pressure != nil {
		if p := pressure(); p != "" {
			fmt.Fprintln(w, p)
		}
	}
}
