package debugserver

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"

	"streammine/internal/metrics"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("demo_total", "A demo counter.").Add(3)

	var mu sync.Mutex
	var healthErr error
	s := New(reg, func() error {
		mu.Lock()
		defer mu.Unlock()
		return healthErr
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	base := "http://" + addr

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "demo_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	if code, body, _ = get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	mu.Lock()
	healthErr = errors.New("node down")
	mu.Unlock()
	if code, body, _ = get(t, base+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "node down") {
		t.Errorf("unhealthy /healthz = %d %q, want 503 with cause", code, body)
	}

	if code, _, _ = get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

func TestServerNilHealth(t *testing.T) {
	s := New(metrics.NewRegistry(), nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	if code, _, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz with nil health = %d, want 200", code)
	}
}

func TestServerHealthzPressure(t *testing.T) {
	s := New(metrics.NewRegistry(), nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// No provider: plain liveness line.
	_, body, _ := get(t, "http://"+addr+"/healthz")
	if body != "ok\n" {
		t.Fatalf("healthz body = %q", body)
	}

	var mu sync.Mutex
	snapshot := ""
	s.SetPressure(func() string {
		mu.Lock()
		defer mu.Unlock()
		return snapshot
	})

	// Empty snapshot appends nothing.
	_, body, _ = get(t, "http://"+addr+"/healthz")
	if body != "ok\n" {
		t.Fatalf("healthz with empty pressure = %q", body)
	}

	mu.Lock()
	snapshot = `pressure: [{"node":"sketch","dataDepth":7,"dataCap":32}]`
	mu.Unlock()
	_, body, _ = get(t, "http://"+addr+"/healthz")
	if !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("liveness line missing: %q", body)
	}
	if !strings.Contains(body, `"dataDepth":7`) || !strings.Contains(body, `"node":"sketch"`) {
		t.Fatalf("pressure snapshot missing from healthz: %q", body)
	}

	// Pressure rides along with a degraded report too.
	s.SetDegraded(func() []string { return []string{"bridge a:0->b:0"} })
	_, body, _ = get(t, "http://"+addr+"/healthz")
	if !strings.HasPrefix(body, "degraded: bridge a:0->b:0\n") || !strings.Contains(body, "pressure: ") {
		t.Fatalf("degraded+pressure body = %q", body)
	}
}

// do issues a request with an arbitrary method and decodes the response.
func do(t *testing.T, method, url, body string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// wantJSONError asserts the uniform debug-endpoint error shape: the
// given status, an application/json content type, and a parseable
// {"error": ...} body whose message contains fragment.
func wantJSONError(t *testing.T, code int, body string, hdr http.Header, wantCode int, fragment string) {
	t.Helper()
	if code != wantCode {
		t.Errorf("status = %d, want %d (body %q)", code, wantCode, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q, want application/json", ct)
	}
	var parsed struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, body)
	}
	if parsed.Error == "" || !strings.Contains(parsed.Error, fragment) {
		t.Errorf("error = %q, want substring %q", parsed.Error, fragment)
	}
}

// TestDebugEndpointJSONErrors locks in the error contract shared by every
// /debug/* route: route unset → 404, wrong method → 405, bad input → 400,
// all with the same {"error": "..."} JSON body so pollers parse one shape.
func TestDebugEndpointJSONErrors(t *testing.T) {
	s := New(metrics.NewRegistry(), nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + addr

	// Unset routes answer 404 with a JSON error.
	code, body, hdr := do(t, http.MethodGet, base+"/debug/chaos", "")
	wantJSONError(t, code, body, hdr, http.StatusNotFound, "chaos injection not enabled")
	code, body, hdr = do(t, http.MethodGet, base+"/debug/health", "")
	wantJSONError(t, code, body, hdr, http.StatusNotFound, "not enabled")
	code, body, hdr = do(t, http.MethodGet, base+"/debug/flightrec", "")
	wantJSONError(t, code, body, hdr, http.StatusNotFound, "not enabled")
	code, body, hdr = do(t, http.MethodPost, base+"/debug/flightrec", "")
	wantJSONError(t, code, body, hdr, http.StatusNotFound, "not enabled")

	// Wire providers; wrong methods answer 405, still JSON.
	s.SetChaos(func(v url.Values) (string, error) {
		if v.Get("fault") == "bogus" {
			return "", errors.New("unknown fault \"bogus\"")
		}
		return "none", nil
	})
	s.SetHealth(func() any { return map[string]int{"workers": 2} })
	s.SetFlightRec(func() any { return nil }, func() (string, error) { return "/tmp/fr.json", nil })

	code, body, hdr = do(t, http.MethodDelete, base+"/debug/chaos", "")
	wantJSONError(t, code, body, hdr, http.StatusMethodNotAllowed, "DELETE")
	code, body, hdr = do(t, http.MethodPost, base+"/debug/health", "")
	wantJSONError(t, code, body, hdr, http.StatusMethodNotAllowed, "POST")
	code, body, hdr = do(t, http.MethodDelete, base+"/debug/flightrec", "")
	wantJSONError(t, code, body, hdr, http.StatusMethodNotAllowed, "DELETE")

	// Bad chaos input answers 400 with the handler's message.
	code, body, hdr = do(t, http.MethodPost, base+"/debug/chaos", "fault=bogus")
	wantJSONError(t, code, body, hdr, http.StatusBadRequest, "unknown fault")

	// A wired provider with no data yet is distinguishable from an unset
	// route only by message, never by shape.
	code, body, hdr = do(t, http.MethodGet, base+"/debug/flightrec", "")
	wantJSONError(t, code, body, hdr, http.StatusNotFound, "no data yet")

	// The happy paths stay JSON too.
	code, body, hdr = do(t, http.MethodGet, base+"/debug/health", "")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") || !strings.Contains(body, `"workers": 2`) {
		t.Errorf("/debug/health = %d %q (%s)", code, body, hdr.Get("Content-Type"))
	}
	code, body, _ = do(t, http.MethodPost, base+"/debug/flightrec", "")
	if code != http.StatusOK || !strings.Contains(body, `"path": "/tmp/fr.json"`) {
		t.Errorf("flightrec snapshot = %d %q", code, body)
	}
}
