package debugserver

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"streammine/internal/metrics"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("demo_total", "A demo counter.").Add(3)

	var mu sync.Mutex
	var healthErr error
	s := New(reg, func() error {
		mu.Lock()
		defer mu.Unlock()
		return healthErr
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	base := "http://" + addr

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "demo_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	if code, body, _ = get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	mu.Lock()
	healthErr = errors.New("node down")
	mu.Unlock()
	if code, body, _ = get(t, base+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "node down") {
		t.Errorf("unhealthy /healthz = %d %q, want 503 with cause", code, body)
	}

	if code, _, _ = get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

func TestServerNilHealth(t *testing.T) {
	s := New(metrics.NewRegistry(), nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	if code, _, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz with nil health = %d, want 200", code)
	}
}

func TestServerHealthzPressure(t *testing.T) {
	s := New(metrics.NewRegistry(), nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// No provider: plain liveness line.
	_, body, _ := get(t, "http://"+addr+"/healthz")
	if body != "ok\n" {
		t.Fatalf("healthz body = %q", body)
	}

	var mu sync.Mutex
	snapshot := ""
	s.SetPressure(func() string {
		mu.Lock()
		defer mu.Unlock()
		return snapshot
	})

	// Empty snapshot appends nothing.
	_, body, _ = get(t, "http://"+addr+"/healthz")
	if body != "ok\n" {
		t.Fatalf("healthz with empty pressure = %q", body)
	}

	mu.Lock()
	snapshot = `pressure: [{"node":"sketch","dataDepth":7,"dataCap":32}]`
	mu.Unlock()
	_, body, _ = get(t, "http://"+addr+"/healthz")
	if !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("liveness line missing: %q", body)
	}
	if !strings.Contains(body, `"dataDepth":7`) || !strings.Contains(body, `"node":"sketch"`) {
		t.Fatalf("pressure snapshot missing from healthz: %q", body)
	}

	// Pressure rides along with a degraded report too.
	s.SetDegraded(func() []string { return []string{"bridge a:0->b:0"} })
	_, body, _ = get(t, "http://"+addr+"/healthz")
	if !strings.HasPrefix(body, "degraded: bridge a:0->b:0\n") || !strings.Contains(body, "pressure: ") {
		t.Fatalf("degraded+pressure body = %q", body)
	}
}
