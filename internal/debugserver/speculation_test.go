package debugserver

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"streammine/internal/metrics"
	"streammine/internal/profiler"
)

// TestSpeculationEndpoint covers the /debug/speculation contract: 404
// while no provider is installed (profiling off) or while the provider
// returns nil, then an application/json profiler summary that
// round-trips through the JSON schema tracetool consumes.
func TestSpeculationEndpoint(t *testing.T) {
	s := New(metrics.NewRegistry(), nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + addr

	if code, _, _ := get(t, base+"/debug/speculation"); code != http.StatusNotFound {
		t.Errorf("unset /debug/speculation = %d, want 404", code)
	}

	s.SetSpeculation(func() any { return nil })
	if code, _, _ := get(t, base+"/debug/speculation"); code != http.StatusNotFound {
		t.Errorf("nil-valued /debug/speculation = %d, want 404", code)
	}

	prof := profiler.New(profiler.Config{})
	np := prof.Node("agg")
	np.AbortedAttempt(profiler.CauseConflict, 3*time.Millisecond, 2)
	np.AttemptCPU(10 * time.Millisecond)
	s.SetSpeculation(func() any { return prof.Summary() })

	code, body, hdr := get(t, base+"/debug/speculation")
	if code != http.StatusOK {
		t.Fatalf("/debug/speculation = %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want application/json", ct)
	}
	var sum profiler.Summary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatalf("body is not a summary: %v\n%s", err, body)
	}
	nw := sum.NodeByName("agg")
	if nw == nil {
		t.Fatalf("summary has no agg ledger: %s", body)
	}
	if nw.AbortedAttempts["conflict"] != 1 || nw.WastedCPUNs["conflict"] != 3_000_000 {
		t.Errorf("agg ledger = %+v, want 1 conflict abort, 3ms wasted", nw)
	}
}

// TestClusterEndpoint covers /debug/cluster: 404 until the coordinator
// installs its view provider, then JSON.
func TestClusterEndpoint(t *testing.T) {
	s := New(metrics.NewRegistry(), nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + addr

	if code, _, _ := get(t, base+"/debug/cluster"); code != http.StatusNotFound {
		t.Errorf("unset /debug/cluster = %d, want 404", code)
	}
	s.SetCluster(func() any {
		return map[string]any{"workers": []string{"w1", "w2"}}
	})
	code, body, hdr := get(t, base+"/debug/cluster")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/debug/cluster = %d %q", code, hdr.Get("Content-Type"))
	}
	var view struct {
		Workers []string `json:"workers"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("body is not JSON: %v\n%s", err, body)
	}
	if len(view.Workers) != 2 {
		t.Errorf("workers = %v, want 2", view.Workers)
	}
}

// expositionLine matches one Prometheus text-format sample:
// name{labels} value — label values with escaped quotes included.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

// TestMetricsExpositionParses scrapes /metrics populated with every
// series kind (counter, labeled counter with escaping-hostile values,
// gauge, histogram) and checks line-by-line well-formedness.
func TestMetricsExpositionParses(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("events_total", "Events.").Add(7)
	reg.CounterWith("aborts_total", "Aborts.", metrics.Labels{"cause": "conflict", "note": "say \"hi\"\nbye\\"}).Inc()
	reg.Gauge("depth", "Depth.").Set(3)
	reg.HDR("latency", "Latency.").Record(time.Millisecond)

	s := New(reg, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body, hdr := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	types := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
	for name, typ := range map[string]string{
		"events_total": "counter", "aborts_total": "counter",
		"depth": "gauge", "latency": "histogram",
	} {
		if types[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], typ)
		}
	}
}
