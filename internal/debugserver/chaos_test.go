package debugserver

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"streammine/internal/metrics"
)

// TestChaosEndpoint covers the /debug/chaos contract: 404 while no
// handler is installed (the binary ran without -chaos), state on GET,
// apply-then-state on POST, and 400 on handler rejection.
func TestChaosEndpoint(t *testing.T) {
	s := New(metrics.NewRegistry(), nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + addr

	if code, _, _ := get(t, base+"/debug/chaos"); code != http.StatusNotFound {
		t.Errorf("unset /debug/chaos = %d, want 404", code)
	}

	var applied url.Values
	s.SetChaos(func(q url.Values) (string, error) {
		if len(q) == 0 {
			return "off", nil
		}
		if q.Get("net_delay") == "bad" {
			return "", fmt.Errorf("invalid")
		}
		applied = q
		return "net_delay=" + q.Get("net_delay"), nil
	})

	code, body, _ := get(t, base+"/debug/chaos")
	if code != http.StatusOK || strings.TrimSpace(body) != "off" {
		t.Errorf("GET state = %d %q, want 200 \"off\"", code, body)
	}

	resp, err := http.Post(base+"/debug/chaos?net_delay=5ms", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST apply = %d, want 200", resp.StatusCode)
	}
	if applied.Get("net_delay") != "5ms" {
		t.Errorf("handler saw params %v, want net_delay=5ms", applied)
	}

	resp, err = http.Post(base+"/debug/chaos?net_delay=bad", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST bad param = %d, want 400", resp.StatusCode)
	}
}
