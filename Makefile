# Development targets. `make check` is the CI gate documented in README.md.

GOFILES := $(shell find . -name '*.go' -not -path './.git/*')
BENCHREV := $(shell git rev-parse --short HEAD 2>/dev/null || date +%s)

.PHONY: check fmt vet staticcheck test race build bench trace-e2e doccheck campaign-smoke

check: fmt vet staticcheck doccheck race

build:
	go build ./...

fmt:
	@out="$$(gofmt -l $(GOFILES))"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

# staticcheck is optional locally (the dev container may not ship it) but
# required in CI, which installs it before make check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	go test ./...

race:
	go test -race ./...

# trace-e2e runs a traced two-worker cluster as real processes and pipes
# the merged per-process trace through tracetool -validate
# (docs/OBSERVABILITY.md). Artifacts land in trace-e2e-out/.
trace-e2e:
	scripts/trace_e2e.sh trace-e2e-out

# doccheck fails on dead intra-repo markdown links and on cmd/ flags that
# no documentation mentions (docs/PERFORMANCE.md documents the policy).
doccheck:
	go run ./cmd/doccheck

# bench smoke-runs every benchmark once and archives the results as
# machine-readable BENCH_<rev>.json (docs/FLOW.md, "perf trajectory").
# -require fails the run if the latency/throughput columns vanish from the
# bench output instead of silently archiving blanks. Set BENCHPREV to a
# previous BENCH_*.json to also fail on >20% events_per_sec drops or
# doubled waste_cpu_pct (CI does this against the last archived artifact).
bench:
	go test -bench . -benchtime 1x -run '^$$' ./... > bench-raw.txt || (cat bench-raw.txt; rm -f bench-raw.txt; exit 1)
	go run ./cmd/benchjson -require events_per_sec,latency_p99_us,ingest_admit_p99_ms,ingest_shed_pct \
		$(if $(BENCHPREV),-prev $(BENCHPREV)) \
		-out BENCH_$(BENCHREV).json < bench-raw.txt
	@rm -f bench-raw.txt

# campaign-smoke runs the fast fault-recovery campaign (docs/CAMPAIGNS.md):
# the paper workload under sigkill / slow-bridge / slow-disk faults with
# speculation on and off (8 cells including the auto-added baselines),
# each a real multi-process cluster. The bench-schema rows are then gated
# through benchjson so a vanished recovery_ms/completeness_pct column —
# or a vanished detect_ms/replay_ms recovery-anatomy column from the
# instrumented /debug/recovery timeline — (or a regression vs
# CAMPAIGNPREV) fails the run. Artifacts land in campaign-out/ plus
# CAMPAIGN_smoke.json at the repo root.
campaign-smoke:
	go run ./cmd/campaign -spec campaigns/smoke.json -out campaign-out
	go run ./cmd/benchjson -injson -require recovery_ms,completeness_pct,detect_ms,replay_ms \
		$(if $(CAMPAIGNPREV),-prev $(CAMPAIGNPREV)) \
		-out CAMPAIGN_smoke.json < campaign-out/bench.json
