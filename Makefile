# Development targets. `make check` is the CI gate documented in README.md.

GOFILES := $(shell find . -name '*.go' -not -path './.git/*')

.PHONY: check fmt vet test race build

check: fmt vet race

build:
	go build ./...

fmt:
	@out="$$(gofmt -l $(GOFILES))"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...
