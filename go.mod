module streammine

go 1.22
