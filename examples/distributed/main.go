// Distributed runs the pipeline across two engines connected by real TCP
// — the paper's deployment model, where operators are separate processes
// on one machine or across a LAN.
//
// Engine A (the "ingest process") hosts a publisher and a logging
// normalizer on a slow simulated disk; engine B (the "analytics process")
// hosts a stateful classifier. Speculative events cross the wire before
// A's log is stable, FINALIZE messages follow when it commits, and B's
// ACKs flow back to prune A's replay buffer.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/transport"
	"streammine/internal/vclock"
)

const (
	events  = 200
	diskLat = 8 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	wall := vclock.NewWall()

	// --- Engine A: publisher → normalizer (logs one decision/event). ---
	gA := graph.New()
	pub := gA.AddNode(graph.Node{Name: "publisher"})
	norm := gA.AddNode(graph.Node{
		Name:        "normalizer",
		Op:          &operator.Passthrough{LogDecision: true},
		Speculative: true,
	})
	gA.Connect(pub, 0, norm, 0)
	poolA := storage.NewPool([]storage.Disk{storage.NewSimDisk(diskLat, 0)})
	defer poolA.Close()
	engA, err := core.New(gA, core.Options{Pool: poolA, Seed: 1, Clock: wall})
	if err != nil {
		return err
	}
	if err := engA.Start(); err != nil {
		return err
	}
	defer engA.Stop()

	// --- Engine B: classifier → stdout sink. ---
	gB := graph.New()
	cls := gB.AddNode(graph.Node{
		Name:        "classifier",
		Op:          &operator.Classifier{Classes: 4},
		Traits:      operator.ClassifierTraits(4),
		Speculative: true,
	})
	poolB := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer poolB.Close()
	engB, err := core.New(gB, core.Options{Pool: poolB, Seed: 2, Clock: wall})
	if err != nil {
		return err
	}
	if err := engB.Start(); err != nil {
		return err
	}
	defer engB.Stop()

	var mu sync.Mutex
	var specSeen, finalSeen int
	var specLat, finalLat time.Duration
	if err := engB.Subscribe(cls, 0, func(ev event.Event, final bool) {
		lat := time.Duration(wall.Now() - ev.Timestamp)
		mu.Lock()
		if final {
			finalSeen++
			finalLat += lat
		} else {
			specSeen++
			specLat += lat
		}
		mu.Unlock()
	}); err != nil {
		return err
	}

	// --- Bridge the engines over loopback TCP. ---
	h, err := engB.BridgeIn(cls, 0)
	if err != nil {
		return err
	}
	srv, err := transport.ListenConn("127.0.0.1:0", h)
	if err != nil {
		return err
	}
	defer srv.Close()
	conn, err := engA.BridgeOut(norm, 0, srv.Addr())
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("engine A → engine B bridged over %s\n", srv.Addr())

	// --- Drive. ---
	src, err := engA.Source(pub)
	if err != nil {
		return err
	}
	for i := 0; i < events; i++ {
		if _, err := src.Emit(uint64(i), operator.EncodeValue(uint64(i))); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		done := finalSeen >= events
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out: %d of %d finals", finalSeen, events)
		}
		time.Sleep(time.Millisecond)
	}
	if err := engA.Err(); err != nil {
		return fmt.Errorf("engine A: %w", err)
	}
	if err := engB.Err(); err != nil {
		return fmt.Errorf("engine B: %w", err)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("classified %d events across the bridge\n", finalSeen)
	if specSeen > 0 {
		fmt.Printf("speculative copies arrived after %v on average (before A's %v log write)\n",
			(specLat / time.Duration(specSeen)).Round(time.Microsecond), diskLat)
	}
	fmt.Printf("finalized results after   %v on average\n",
		(finalLat / time.Duration(finalSeen)).Round(time.Microsecond))
	return nil
}
