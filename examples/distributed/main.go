// Distributed runs one topology split across two workers under a
// coordinator — the paper's deployment model (operators as separate
// processes connected by TCP) driven by the cluster runtime instead of
// hand-wired bridges.
//
// The placement section pins the ingest half (sources + union) to
// partition 0 and the analytics half (classifier + sink) to partition 1;
// the coordinator deploys each partition to its own worker and the
// union→classifier edge crosses workers over a reliable TCP bridge.
// Speculative events still cross the wire before the upstream decision
// log is stable; FINALIZE and ACK traffic flows back over the same link.
//
// Everything runs in-process here (three goroutine "processes"); the
// streammine binary's -coordinator/-worker flags run the identical code
// as real OS processes — see docs/CLUSTER.md.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"streammine/internal/cluster"
	"streammine/internal/event"
)

const topo = `{
  "speculative": true,
  "seed": 7,
  "nodes": [
    {"name": "orders",   "type": "source", "rate": 2000, "count": 400},
    {"name": "clicks",   "type": "source", "rate": 2000, "count": 400},
    {"name": "ingest",   "type": "union",  "inputs": ["orders", "clicks"]},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["ingest"], "checkpointEvery": 64},
    {"name": "out",      "type": "sink",   "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"orders": 0, "clicks": 0, "ingest": 0, "classify": 1, "out": 1}
  }
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	stateDir, err := os.MkdirTemp("", "streammine-distributed-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)

	coord, err := cluster.NewCoordinator([]byte(topo), cluster.CoordinatorOptions{
		Addr: "127.0.0.1:0",
		Logf: logf("coordinator"),
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	fmt.Printf("coordinator on %s\n", coord.Addr())

	var mu sync.Mutex
	seen := make(map[event.ID]bool)
	var workers []*cluster.Worker
	for _, name := range []string{"ingest-worker", "analytics-worker"} {
		w, err := cluster.StartWorker(cluster.WorkerOptions{
			Name:      name,
			CoordAddr: coord.Addr(),
			StateDir:  stateDir,
			Logf:      logf(name),
			OnSinkEvent: func(sink string, ev event.Event) {
				mu.Lock()
				seen[ev.ID] = true
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		defer w.Close()
		workers = append(workers, w)
	}

	select {
	case <-coord.Done():
	case <-time.After(60 * time.Second):
		return fmt.Errorf("timed out waiting for the run to complete")
	}
	if err := coord.Err(); err != nil {
		return err
	}
	for _, w := range workers {
		if err := w.Err(); err != nil {
			return err
		}
	}
	mu.Lock()
	n := len(seen)
	mu.Unlock()
	fmt.Printf("distributed run complete: %d distinct events reached the sink across the bridge\n", n)
	return nil
}

func logf(role string) func(string, ...any) {
	return func(format string, args ...any) {
		fmt.Printf("[%s] "+format+"\n", append([]any{role}, args...)...)
	}
}
