// Stocks reproduces the paper's Figure 1 application end to end: two
// financial publishers feed a stateful Processor (per-symbol statistics),
// whose output is enriched (a costly stateless step), load-balanced by a
// Split with a *logged random decision*, and consumed by two consumers.
//
// Every operator logs its non-deterministic decisions to a simulated
// 10 ms disk. The pipeline runs twice — non-speculatively (the baseline:
// each hop waits for its log) and speculatively (logs overlap) — and
// prints the end-to-end latency of both, demonstrating the paper's
// headline result on its own motivating application.
//
//	go run ./examples/stocks
package main

import (
	"fmt"
	"os"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/vclock"
)

const (
	symbols   = 8
	trades    = 300
	tradeRate = 400 // events/second per publisher
	diskLat   = 10 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("Fig. 1 application: 2 publishers → processor → enrich → split → 2 consumers\n")
	fmt.Printf("every operator logs decisions to a simulated %v disk\n\n", diskLat)
	nonspec, err := runPipeline(false)
	if err != nil {
		return fmt.Errorf("non-speculative run: %w", err)
	}
	spec, err := runPipeline(true)
	if err != nil {
		return fmt.Errorf("speculative run: %w", err)
	}
	fmt.Printf("\nnon-speculative: mean=%v p99=%v\n", nonspec.Mean(), nonspec.Percentile(0.99))
	fmt.Printf("speculative:     mean=%v p99=%v\n", spec.Mean(), spec.Percentile(0.99))
	fmt.Printf("speculation cuts mean latency by %.1fx\n",
		float64(nonspec.Mean())/float64(spec.Mean()))
	return nil
}

func runPipeline(speculative bool) (*metrics.Histogram, error) {
	g := graph.New()
	pub1 := g.AddNode(graph.Node{Name: "nyse"})
	pub2 := g.AddNode(graph.Node{Name: "nasdaq"})
	proc := g.AddNode(graph.Node{
		Name:            "processor",
		Op:              &operator.Classifier{Classes: symbols},
		Traits:          operator.ClassifierTraits(symbols),
		Speculative:     speculative,
		CheckpointEvery: 100,
	})
	enrich := g.AddNode(graph.Node{
		Name: "enrich",
		Op: &operator.Enrich{
			Cost:     200 * time.Microsecond,
			Annotate: func(e event.Event) []byte { return []byte{0xEE} },
		},
		Traits:      operator.EnrichTraits,
		Speculative: speculative,
	})
	split := g.AddNode(graph.Node{
		Name:        "split",
		Op:          &operator.Split{Outputs: 2}, // logged random balancing
		OutputPorts: 2,
		Speculative: speculative,
	})
	g.Connect(pub1, 0, proc, 0)
	g.Connect(pub2, 0, proc, 1)
	g.Connect(proc, 0, enrich, 0)
	g.Connect(enrich, 0, split, 0)

	// One writer pool per operator process, as in the paper's deployment.
	pools := map[graph.NodeID]*storage.Pool{}
	for _, id := range []graph.NodeID{proc, enrich, split} {
		pools[id] = storage.NewPool([]storage.Disk{storage.NewSimDisk(diskLat, 0)})
		defer pools[id].Close()
	}
	shared := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer shared.Close()

	wall := vclock.NewWall()
	eng, err := core.New(g, core.Options{Pool: shared, NodePools: pools, Seed: 7, Clock: wall})
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	defer eng.Stop()

	hist := metrics.NewHistogram()
	consumed := make(chan struct{}, 4*trades)
	consume := func(ev event.Event, final bool) {
		if !final {
			return
		}
		if lat := time.Duration(wall.Now() - ev.Timestamp); lat > 0 {
			hist.Record(lat)
		}
		consumed <- struct{}{}
	}
	if err := eng.Subscribe(split, 0, consume); err != nil {
		return nil, err
	}
	if err := eng.Subscribe(split, 1, consume); err != nil {
		return nil, err
	}

	s1, err := eng.Source(pub1)
	if err != nil {
		return nil, err
	}
	s2, err := eng.Source(pub2)
	if err != nil {
		return nil, err
	}
	period := time.Second / tradeRate
	for i := 0; i < trades; i++ {
		if _, err := s1.Emit(uint64(i)%symbols, operator.EncodeValue(uint64(100+i))); err != nil {
			return nil, err
		}
		if _, err := s2.Emit(uint64(i+3)%symbols, operator.EncodeValue(uint64(200+i))); err != nil {
			return nil, err
		}
		time.Sleep(period)
	}
	for i := 0; i < 2*trades; i++ {
		select {
		case <-consumed:
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("timed out after %d of %d outputs", i, 2*trades)
		}
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	mode := "non-speculative"
	if speculative {
		mode = "speculative"
	}
	fmt.Printf("%-16s %d trades consumed, mean latency %v\n", mode, hist.Count(), hist.Mean())
	return hist, nil
}
