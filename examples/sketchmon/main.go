// Sketchmon monitors a skewed sensor stream with an optimistically
// parallelized count-sketch operator (the paper's §4 expensive-operator
// scenario): two sensor arrays feed a union; a count sketch estimates
// per-sensor frequencies; a top-k tracker reports the hottest sensors.
//
// The pipeline runs with 1 worker thread and again with 4; because sketch
// updates touch data-dependent counters, speculative executions rarely
// conflict and the engine extracts the parallelism automatically.
//
//	go run ./examples/sketchmon
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"streammine/internal/core"
	"streammine/internal/detrand"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/sketch"
	"streammine/internal/storage"
)

const (
	sensors   = 5000
	readings  = 1500
	workCost  = 300 * time.Microsecond // simulated analysis per reading
	topKCount = 5
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	t1, _, err := monitor(1)
	if err != nil {
		return err
	}
	t4, top, err := monitor(4)
	if err != nil {
		return err
	}
	fmt.Printf("\n1 worker:  %v\n4 workers: %v  (%.1fx speed-up from optimistic parallelization)\n",
		t1.Round(time.Millisecond), t4.Round(time.Millisecond), float64(t1)/float64(t4))
	fmt.Printf("\nhottest sensors (count-sketch estimates):\n")
	for i, e := range top {
		fmt.Printf("  #%d sensor %-6d ≈%d readings\n", i+1, e.Key, e.Estimate)
	}
	return nil
}

func monitor(workers int) (time.Duration, []sketch.Entry, error) {
	const depth, width = 4, 2048
	g := graph.New()
	s1 := g.AddNode(graph.Node{Name: "array-east"})
	s2 := g.AddNode(graph.Node{Name: "array-west"})
	union := g.AddNode(graph.Node{
		Name:        "union",
		Op:          &operator.Union{},
		Traits:      operator.Traits{Stateful: true, OrderSensitive: true},
		Speculative: true,
	})
	sk := g.AddNode(graph.Node{
		Name:        "sketch",
		Op:          &operator.SketchOp{Depth: depth, Width: width, Seed: 11, Cost: workCost},
		Traits:      operator.SketchTraits(depth, width),
		Speculative: true,
		Workers:     workers,
	})
	g.Connect(s1, 0, union, 0)
	g.Connect(s2, 0, union, 1)
	g.Connect(union, 0, sk, 0)

	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, core.Options{Pool: pool, Seed: 13})
	if err != nil {
		return 0, nil, err
	}
	if err := eng.Start(); err != nil {
		return 0, nil, err
	}
	defer eng.Stop()

	// Track the top sensors from the finalized estimates.
	var mu sync.Mutex
	top := sketch.NewTopK(topKCount)
	if err := eng.Subscribe(sk, 0, func(ev event.Event, final bool) {
		if !final {
			return
		}
		mu.Lock()
		top.Offer(ev.Key, int64(operator.DecodeValue(ev.Payload)))
		mu.Unlock()
	}); err != nil {
		return 0, nil, err
	}

	h1, err := eng.Source(s1)
	if err != nil {
		return 0, nil, err
	}
	h2, err := eng.Source(s2)
	if err != nil {
		return 0, nil, err
	}
	// Zipf-skewed sensor IDs: a few sensors are hot.
	zipf := detrand.NewZipf(detrand.New(3), sensors, 0.9)

	start := time.Now()
	for i := 0; i < readings; i++ {
		h := h1
		if i%2 == 1 {
			h = h2
		}
		if _, err := h.Emit(uint64(zipf.Draw()), nil); err != nil {
			return 0, nil, err
		}
	}
	eng.Drain()
	elapsed := time.Since(start)
	if err := eng.Err(); err != nil {
		return 0, nil, err
	}
	st, err := eng.Stats(sk)
	if err != nil {
		return 0, nil, err
	}
	fmt.Printf("workers=%d: %d readings in %v (%d STM aborts)\n",
		workers, readings, elapsed.Round(time.Millisecond), st.Aborts)
	mu.Lock()
	defer mu.Unlock()
	return elapsed, top.Items(), nil
}
