// Specsink demonstrates the paper's closing §4 scenario: the pipeline is
// allowed to externalize *speculative* records to a shared resource (here
// an append-only record store standing in for a file or database), and the
// consuming application filters out records that were never finalized
// using a small reader library.
//
// With logging on a simulated 10 ms disk, speculative records become
// visible within microseconds while finalized ones trail by the disk
// latency — "the total processing latency will be independent of the
// logging latency".
//
//	go run ./examples/specsink
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/vclock"
)

// RecordStore is the external resource: an append-only table of records
// tagged speculative/final, as the paper's file-plus-filter-library.
type RecordStore struct {
	mu      sync.Mutex
	rows    []Row
	finalAt map[event.ID]int // index of the finalization marker
}

// Row is one externalized record.
type Row struct {
	ID          event.ID
	Value       uint64
	Speculative bool
	SeenAt      time.Duration
}

// NewRecordStore returns an empty store.
func NewRecordStore() *RecordStore {
	return &RecordStore{finalAt: make(map[event.ID]int)}
}

// Append writes a record row.
func (rs *RecordStore) Append(row Row) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.rows = append(rs.rows, row)
	if !row.Speculative {
		rs.finalAt[row.ID] = len(rs.rows) - 1
	}
}

// ReadCommitted is the reader library: it returns only rows whose IDs were
// finalized, dropping speculative rows that never became final.
func (rs *RecordStore) ReadCommitted() []Row {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]Row, 0, len(rs.finalAt))
	for _, idx := range rs.finalAt {
		out = append(out, rs.rows[idx])
	}
	return out
}

// Stats summarizes speculative vs final visibility latency.
func (rs *RecordStore) Stats() (specMean, finalMean time.Duration, specRows, finalRows int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var specTotal, finalTotal time.Duration
	for _, r := range rs.rows {
		if r.Speculative {
			specTotal += r.SeenAt
			specRows++
		} else {
			finalTotal += r.SeenAt
			finalRows++
		}
	}
	if specRows > 0 {
		specMean = specTotal / time.Duration(specRows)
	}
	if finalRows > 0 {
		finalMean = finalTotal / time.Duration(finalRows)
	}
	return specMean, finalMean, specRows, finalRows
}

const (
	events  = 50
	diskLat = 10 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "sensors"})
	an := g.AddNode(graph.Node{
		Name:        "analysis",
		Op:          &operator.Passthrough{LogDecision: true}, // non-deterministic, logged
		Speculative: true,
	})
	g.Connect(src, 0, an, 0)

	pool := storage.NewPool([]storage.Disk{storage.NewSimDisk(diskLat, 0)})
	defer pool.Close()
	wall := vclock.NewWall()
	eng, err := core.New(g, core.Options{Pool: pool, Seed: 5, Clock: wall})
	if err != nil {
		return err
	}
	if err := eng.Start(); err != nil {
		return err
	}
	defer eng.Stop()

	store := NewRecordStore()
	if err := eng.Subscribe(an, 0, func(ev event.Event, final bool) {
		lat := time.Duration(wall.Now() - ev.Timestamp)
		store.Append(Row{
			ID:          ev.ID,
			Value:       operator.DecodeValue(ev.Payload),
			Speculative: !final,
			SeenAt:      lat,
		})
	}); err != nil {
		return err
	}

	handle, err := eng.Source(src)
	if err != nil {
		return err
	}
	for i := uint64(0); i < events; i++ {
		if _, err := handle.Emit(i, operator.EncodeValue(i*i)); err != nil {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		return err
	}

	specMean, finalMean, specRows, finalRows := store.Stats()
	fmt.Printf("externalized %d speculative rows (visible after %v on average)\n", specRows, specMean)
	fmt.Printf("finalized    %d rows            (visible after %v on average, disk=%v)\n",
		finalRows, finalMean, diskLat)
	committed := store.ReadCommitted()
	fmt.Printf("reader library returns %d committed rows; speculative-only rows filtered out\n", len(committed))
	if finalMean > 0 && specMean > 0 {
		fmt.Printf("speculative visibility is %.0fx faster than waiting for the log\n",
			float64(finalMean)/float64(specMean))
	}
	return nil
}
