// Query shows the continuous-query layer: three queries compiled onto the
// speculative engine, all fed by the same pair of market-data streams.
//
//	go run ./examples/query
package main

import (
	"fmt"
	"os"
	"sync"

	"streammine/internal/core"
	"streammine/internal/cq"
	"streammine/internal/detrand"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	queries := []string{
		"SELECT AVG(VALUE) FROM nyse, nasdaq WINDOW COUNT 50",
		"SELECT COUNT(DISTINCT KEY) FROM nyse",
		"SELECT VALUE FROM nasdaq WHERE VALUE >= 950",
	}

	// One graph, two shared source nodes, three compiled query pipelines.
	g := graph.New()
	nyse := g.AddNode(graph.Node{Name: "nyse"})
	nasdaq := g.AddNode(graph.Node{Name: "nasdaq"})
	sources := map[string]graph.NodeID{"nyse": nyse, "nasdaq": nasdaq}

	var outputs []graph.NodeID
	for i, text := range queries {
		q, err := cq.Parse(text)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		att, err := cq.Attach(g, q, sources, cq.Options{
			Speculative: true,
			NamePrefix:  fmt.Sprintf("q%d", i),
		})
		if err != nil {
			return fmt.Errorf("attach query %d: %w", i, err)
		}
		outputs = append(outputs, att.Output)
	}

	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, core.Options{Pool: pool, Seed: 9})
	if err != nil {
		return err
	}
	if err := eng.Start(); err != nil {
		return err
	}
	defer eng.Stop()

	var mu sync.Mutex
	counts := make([]int, len(queries))
	lasts := make([]uint64, len(queries))
	for i, out := range outputs {
		i := i
		if err := eng.Subscribe(out, 0, func(ev event.Event, final bool) {
			if !final {
				return
			}
			mu.Lock()
			counts[i]++
			lasts[i] = operator.DecodeValue(ev.Payload)
			mu.Unlock()
		}); err != nil {
			return err
		}
	}

	// Publish 2×1500 ticks: keys are symbols, values are prices 0..999.
	hN, err := eng.Source(nyse)
	if err != nil {
		return err
	}
	hQ, err := eng.Source(nasdaq)
	if err != nil {
		return err
	}
	rng := detrand.New(77)
	for i := 0; i < 1500; i++ {
		if _, err := hN.Emit(uint64(rng.Intn(40)), operator.EncodeValue(uint64(rng.Intn(1000)))); err != nil {
			return err
		}
		if _, err := hQ.Emit(uint64(40+rng.Intn(40)), operator.EncodeValue(uint64(rng.Intn(1000)))); err != nil {
			return err
		}
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		return err
	}

	mu.Lock()
	defer mu.Unlock()
	for i, text := range queries {
		fmt.Printf("%-55s → %4d results (last value %d)\n", text, counts[i], lasts[i])
	}
	return nil
}
