// Quickstart: the smallest useful StreamMine pipeline.
//
// A source publishes numbers; a filter keeps the even ones; a count-window
// aggregate emits the average of every 5 survivors. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Describe the topology.
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "numbers"})
	evens := g.AddNode(graph.Node{
		Name:        "evens",
		Op:          &operator.Filter{Pred: func(e event.Event) bool { return e.Key%2 == 0 }},
		Traits:      operator.FilterTraits,
		Speculative: true,
	})
	avg := g.AddNode(graph.Node{
		Name:        "avg5",
		Op:          &operator.CountWindowAvg{Window: 5},
		Traits:      operator.CountWindowTraits,
		Speculative: true,
	})
	g.Connect(src, 0, evens, 0)
	g.Connect(evens, 0, avg, 0)

	// 2. Start the engine over an in-memory stable store.
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, core.Options{Pool: pool, Seed: 1})
	if err != nil {
		return err
	}
	if err := eng.Start(); err != nil {
		return err
	}
	defer eng.Stop()

	// 3. Subscribe to finalized window averages.
	done := make(chan struct{})
	windows := 0
	if err := eng.Subscribe(avg, 0, func(ev event.Event, final bool) {
		if !final {
			return
		}
		windows++
		fmt.Printf("window %d: average of evens = %d\n", windows, operator.DecodeValue(ev.Payload))
		if windows == 4 {
			close(done)
		}
	}); err != nil {
		return err
	}

	// 4. Publish 0..39: evens 0,2,...,38 → four windows of five.
	handle, err := eng.Source(src)
	if err != nil {
		return err
	}
	for i := uint64(0); i < 40; i++ {
		if _, err := handle.Emit(i, operator.EncodeValue(i)); err != nil {
			return err
		}
	}
	<-done
	eng.Drain()
	return eng.Err()
}
